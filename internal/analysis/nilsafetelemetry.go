package analysis

import (
	"go/ast"
	"go/types"
)

// NilSafeTelemetry enforces the telemetry package's typed-nil contract
// (DESIGN.md §9): telemetry.Disabled is a typed nil *Telemetry, and every
// handle obtained through it (Scope, Counter, Gauge, Histogram, Registry)
// is also nil when disabled. The entire API is safe exactly as long as
// consumers go through methods — a method call reduces to a nil check; a
// field access, a dereference, or a value copy panics or splits the
// contract. Outside internal/telemetry the analyzer therefore flags:
//
//   - selecting a field (not a method) of a telemetry handle type;
//   - dereferencing a telemetry handle pointer (`*tel`);
//   - constructing handle struct values directly (use telemetry.New);
//   - comparing against telemetry.Disabled (use Enabled(); a future
//     enabled-but-different sink would break the identity comparison).
var NilSafeTelemetry = &Analyzer{
	Name: "nilsafetelemetry",
	Doc: "telemetry handles are typed-nil when disabled; only nil-safe method calls may touch them " +
		"outside internal/telemetry (no field access, dereference, value copy, or Disabled comparison)",
	Run: runNilSafeTelemetry,
}

// telemetryHandles are the nil-safe handle types of the contract.
var telemetryHandles = map[string]bool{
	"Telemetry": true,
	"Registry":  true,
	"Scope":     true,
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func isTelemetryHandle(t types.Type) bool {
	pkg, name, ok := namedFrom(t)
	return ok && pkg == telemetryPath && telemetryHandles[name]
}

func runNilSafeTelemetry(pass *Pass) {
	if pass.Pkg.Path() == telemetryPath {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[x]
				if ok && sel.Kind() == types.FieldVal && isTelemetryHandle(sel.Recv()) {
					pass.Reportf(x.Sel.Pos(),
						"direct field access on telemetry handle (%s): use the nil-safe methods — this panics when the handle is telemetry.Disabled (typed nil)",
						sel.Recv().String())
				}
			case *ast.StarExpr:
				tv, ok := pass.Info.Types[x]
				if !ok || !tv.IsValue() {
					return true
				}
				if inner, ok := pass.Info.Types[x.X]; ok {
					if _, isPtr := inner.Type.Underlying().(*types.Pointer); isPtr && isTelemetryHandle(inner.Type) {
						pass.Reportf(x.Pos(),
							"dereferencing telemetry handle (%s): panics when the handle is telemetry.Disabled (typed nil); call its nil-safe methods instead",
							inner.Type.String())
					}
				}
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[x]; ok && isTelemetryHandle(tv.Type) {
					if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
						pass.Reportf(x.Pos(),
							"constructing %s by value: the zero value is not usable and value copies break the typed-nil contract; use telemetry.New",
							tv.Type.String())
					}
				}
			case *ast.BinaryExpr:
				if x.Op.String() != "==" && x.Op.String() != "!=" {
					return true
				}
				if isDisabledRef(pass.Info, x.X) || isDisabledRef(pass.Info, x.Y) {
					pass.Reportf(x.Pos(),
						"comparing against telemetry.Disabled: use Enabled() — identity comparison breaks if a second disabled sink ever exists and reads as logic, not a nil check")
				}
			}
			return true
		})
	}
}

// isDisabledRef reports whether e references telemetry.Disabled.
func isDisabledRef(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == telemetryPath && v.Name() == "Disabled"
}
