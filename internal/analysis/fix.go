package analysis

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Suggested fixes: a diagnostic may carry machine-applicable edits.
// `qlint -fix` applies them, `qlint -diff` previews them as a unified
// diff; either way the diagnostic text stays the contract and the fix is
// an offer, not a second opinion. Edits are byte-offset ranges into the
// file as parsed, so application is independent of go/token state.

// TextEdit replaces the byte range [Start, End) of Filename with NewText.
type TextEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

// SuggestedFix is one self-contained remedy: all of its edits apply
// together or not at all.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// FixableCount returns how many of the diagnostics carry at least one
// suggested fix.
func FixableCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			n++
		}
	}
	return n
}

// ApplyFixes merges every suggested fix of every diagnostic and returns
// the rewritten content per file (files without fixes are absent).
// Overlapping edits are resolved first-wins in diagnostic order — the
// dropped fix's diagnostic will fire again on the next run, so iterating
// `qlint -fix` converges rather than corrupting the file.
func ApplyFixes(diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		TextEdit
		order int
	}
	byFile := map[string][]edit{}
	order := 0
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], edit{e, order})
				order++
			}
		}
	}
	out := map[string][]byte{}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("qlint: applying fixes: %w", err)
		}
		// Earlier diagnostics win overlaps; then apply back-to-front so
		// offsets stay valid.
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].order < edits[j].order })
		var accepted []edit
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				return nil, fmt.Errorf("qlint: fix edit out of range for %s [%d,%d) of %d bytes", file, e.Start, e.End, len(src))
			}
			clash := false
			for _, a := range accepted {
				if e.Start < a.End && a.Start < e.End {
					clash = true
					break
				}
			}
			if !clash {
				accepted = append(accepted, e)
			}
		}
		sort.Slice(accepted, func(i, j int) bool { return accepted[i].Start > accepted[j].Start })
		buf := append([]byte(nil), src...)
		for _, e := range accepted {
			buf = append(buf[:e.Start], append([]byte(e.NewText), buf[e.End:]...)...)
		}
		out[file] = buf
	}
	return out, nil
}

// UnifiedDiff renders old → new as a minimal unified diff (full-context
// hunks are collapsed to the classic 3-line context) with the given
// display name. Returns "" when the contents are identical.
func UnifiedDiff(name string, oldData, newData []byte) string {
	if string(oldData) == string(newData) {
		return ""
	}
	oldLines := splitLines(string(oldData))
	newLines := splitLines(string(newData))
	ops := diffLines(oldLines, newLines)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", name, name)
	const ctx = 3
	i := 0
	for i < len(ops) {
		// Skip runs of equal lines to find the next hunk.
		if ops[i].kind == ' ' {
			i++
			continue
		}
		// Hunk start: back up ctx context lines.
		start := i
		for start > 0 && ops[start-1].kind == ' ' && i-start < ctx {
			start--
		}
		// Extend to hunk end: stop after 2*ctx consecutive equal lines.
		end := i
		eq := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				eq++
				if eq > 2*ctx {
					break
				}
			} else {
				eq = 0
			}
			end++
		}
		// Trim trailing context to ctx lines.
		for end > i && end-1 < len(ops) && trailingEqual(ops, end) > ctx {
			end--
		}
		oldStart, newStart := ops[start].oldLine, ops[start].newLine
		oldCount, newCount := 0, 0
		for _, op := range ops[start:end] {
			if op.kind != '+' {
				oldCount++
			}
			if op.kind != '-' {
				newCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", oldStart, oldCount, newStart, newCount)
		for _, op := range ops[start:end] {
			sb.WriteByte(byte(op.kind))
			sb.WriteString(op.text)
			sb.WriteByte('\n')
		}
		i = end
	}
	return sb.String()
}

func trailingEqual(ops []diffOp, end int) int {
	n := 0
	for j := end - 1; j >= 0 && ops[j].kind == ' '; j-- {
		n++
	}
	return n
}

type diffOp struct {
	kind             rune // ' ', '-', '+'
	text             string
	oldLine, newLine int // 1-based line numbers at the op
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffLines computes a line diff via the classic O(n·m) LCS table —
// qlint's files are source files, small enough that simplicity wins.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i], i + 1, j + 1})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i], i + 1, j + 1})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j], i + 1, j + 1})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i], i + 1, j + 1})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j], i + 1, j + 1})
	}
	return ops
}
