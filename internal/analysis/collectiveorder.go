package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CollectiveOrder enforces the paper's Sec. 3.4–3.5 communication
// discipline: every rank must execute the same ordered sequence of
// collectives. It flags two statically detectable ways the repo has
// actually broken that invariant:
//
//  1. a collective call (Barrier, Alltoall, GroupAlltoall*, AllreduceSum,
//     AllgatherFloat64, PairExchange) nested under a rank-dependent
//     condition — ranks that skip the branch never enter the collective
//     and the others block forever (the deadlock class PR 2 fixed by hand
//     in World.Run's error paths);
//  2. a conditional `return nil` inside a World.Run closure with
//     collectives after it — an error return poisons the world and
//     unblocks everyone, but a success return does not, so the early-
//     returning rank silently deserts the remaining collectives.
//
// Symmetric rank-branched patterns (both arms of an if issue the same
// collective sequence, as pairwise exchanges require) are legitimate;
// suppress them with //qlint:ignore collectiveorder <symmetry argument>
// on the function.
var CollectiveOrder = &Analyzer{
	Name: "collectiveorder",
	Doc: "collectives reached under rank-dependent conditions or after conditional success returns " +
		"desynchronize the rank-uniform collective order and deadlock the world",
	Run: runCollectiveOrder,
}

// collectiveMethods are the *mpi.Comm entry points that participate in the
// rank-uniform global order.
var collectiveMethods = map[string]bool{
	"Alltoall":            true,
	"GroupAlltoall":       true,
	"GroupAlltoallGather": true,
	"AllreduceSum":        true,
	"AllgatherFloat64":    true,
	"Barrier":             true,
	"PairExchange":        true,
}

func runCollectiveOrder(pass *Pass) {
	for _, f := range pass.Files {
		// The mpi package implements the discipline; its internals are
		// legitimately rank-asymmetric. Its tests are consumers like any
		// other and stay covered.
		if pass.Pkg.Path() == mpiPath && !pass.isTestFile(f) {
			continue
		}
		eachFuncBody(f, func(_ *ast.CommentGroup, name string, body *ast.BlockStmt) {
			checkRankConditioned(pass, body)
		})
		checkRunClosures(pass, f)
	}
}

// collectiveCallee returns the collective's name when call invokes one of
// the *mpi.Comm collective methods, else "".
func collectiveCallee(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || !collectiveMethods[fn.Name()] {
		return ""
	}
	if methodIs(fn, mpiPath, "Comm", fn.Name()) {
		return fn.Name()
	}
	return ""
}

// rankTaint computes the set of objects in a function body whose value is
// derived from the rank id: direct results of (*mpi.Comm).Rank() (or the
// Comm.rank field, for in-package mpi tests), plus anything assigned from
// an expression mentioning one. Two forward passes approximate the
// fixpoint well enough for lint purposes.
func rankTaint(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	dep := func(e ast.Expr) bool { return exprRankDep(pass, e, tainted) }
	for range 2 {
		walkBody(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					return
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if dep(as.Rhs[0]) {
					for _, lhs := range as.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && dep(rhs) {
					mark(as.Lhs[i])
				}
			}
			return true
		})
	}
	return tainted
}

// exprRankDep reports whether e's value can differ between ranks.
func exprRankDep(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		if dep {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, x); methodIs(fn, mpiPath, "Comm", "Rank") {
				dep = true
				return false
			}
		case *ast.SelectorExpr:
			// c.rank field access, visible to mpi's own tests.
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if pkg, name, ok := namedFrom(sel.Recv()); ok && pkg == mpiPath && name == "Comm" && x.Sel.Name == "rank" {
					dep = true
					return false
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil && tainted[obj] {
				dep = true
				return false
			}
		}
		return true
	})
	return dep
}

// span is a half-open position range.
type span struct{ from, to token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.from && p < s.to }

// rankCondRegions collects the position ranges of statements guarded by a
// rank-dependent condition within one function body.
func rankCondRegions(pass *Pass, body *ast.BlockStmt, tainted map[types.Object]bool) []condRegion {
	var regions []condRegion
	add := func(cond ast.Expr, from, to token.Pos) {
		if exprRankDep(pass, cond, tainted) {
			regions = append(regions, condRegion{span{from, to}, cond.Pos()})
		}
	}
	walkBody(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			// The guarded region covers both arms: taking vs. skipping the
			// branch both desynchronize a collective placed inside.
			add(s.Cond, s.Body.Pos(), s.End())
		case *ast.SwitchStmt:
			if s.Tag != nil {
				add(s.Tag, s.Body.Pos(), s.End())
			}
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						add(e, cc.Pos(), cc.End())
					}
				}
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				add(s.Cond, s.Body.Pos(), s.End())
			}
		case *ast.RangeStmt:
			add(s.X, s.Body.Pos(), s.End())
		}
		return true
	})
	return regions
}

type condRegion struct {
	span
	condPos token.Pos
}

// checkRankConditioned flags collective calls inside rank-conditioned
// regions of one function body.
func checkRankConditioned(pass *Pass, body *ast.BlockStmt) {
	tainted := rankTaint(pass, body)
	regions := rankCondRegions(pass, body, tainted)
	if len(regions) == 0 {
		return
	}
	walkBody(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := collectiveCallee(pass.Info, call)
		if name == "" {
			return true
		}
		for _, r := range regions {
			if r.contains(call.Pos()) {
				pass.Reportf(call.Pos(),
					"mpi.%s under rank-dependent condition (line %d): every rank must execute the same ordered collective sequence, or the skipped ranks leave the others blocked",
					name, pass.Fset.Position(r.condPos).Line)
				return true
			}
		}
		return true
	})
}

// checkRunClosures flags conditional success returns that precede
// collectives inside closures passed to (*mpi.World).Run.
func checkRunClosures(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if fn := calleeFunc(pass.Info, call); !methodIs(fn, mpiPath, "World", "Run") {
			return true
		}
		lit, ok := call.Args[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		checkEarlySuccessReturns(pass, lit.Body)
		return true
	})
}

// checkEarlySuccessReturns is path-sensitive over the closure's CFG: a
// conditional `return nil` is a desertion only when a collective is
// reachable from the return's natural successor — the path the rank
// WOULD have executed had it not returned. The v1 check compared source
// positions (`collective after the return's end`), which misfired on
// nested arms whose every path returns before the collective; the CFG
// answers the reachability question exactly.
func checkEarlySuccessReturns(pass *Pass, body *ast.BlockStmt) {
	// Every branch body is a "conditional" region; a `return nil` inside
	// one is reachable by a subset of ranks only (error returns are exempt:
	// World.Run poisons the world on error, unblocking the rest).
	var branches []span
	walkBody(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			branches = append(branches, span{s.Body.Pos(), s.End()})
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			branches = append(branches, span{n.(ast.Stmt).Pos(), n.(ast.Stmt).End()})
		}
		return true
	})
	if len(branches) == 0 {
		return
	}
	g := BuildCFG(body)
	walkBody(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || !allNil(pass.Info, ret.Results) {
			return true
		}
		conditional := false
		for _, b := range branches {
			if b.contains(ret.Pos()) {
				conditional = true
				break
			}
		}
		if !conditional {
			return true
		}
		if call := firstReachableCollective(pass, g, g.AfterReturn(ret)); call != nil {
			pass.Reportf(ret.Pos(),
				"conditional `return nil` inside World.Run closure skips the mpi.%s at line %d on ranks that take it: success returns do not poison the world, so the remaining ranks block forever",
				collectiveCallee(pass.Info, call), pass.Fset.Position(call.Pos()).Line)
		}
		return true
	})
}

// firstReachableCollective returns the source-first collective call in
// any block reachable from `from`, or nil.
func firstReachableCollective(pass *Pass, g *CFG, from *Block) *ast.CallExpr {
	var best *ast.CallExpr
	for blk := range g.Reachable(from) {
		for _, s := range blk.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if ok && collectiveCallee(pass.Info, call) != "" &&
					(best == nil || call.Pos() < best.Pos()) {
					best = call
				}
				return true
			})
		}
	}
	return best
}

// allNil reports whether every result expression is the predeclared nil.
func allNil(info *types.Info, results []ast.Expr) bool {
	if len(results) == 0 {
		return false
	}
	for _, r := range results {
		id, ok := ast.Unparen(r).(*ast.Ident)
		if !ok {
			return false
		}
		if _, isNil := info.Uses[id].(*types.Nil); !isNil {
			return false
		}
	}
	return true
}
