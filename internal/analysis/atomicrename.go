package analysis

import (
	"go/ast"
)

// AtomicRename enforces the checkpoint layer's durability protocol
// (DESIGN.md §8): a file becomes part of a snapshot only through the
// write-temp → fsync → atomic-rename commit helper, so a crash at any
// moment leaves either the previous checkpoint or ignorable temp files —
// never a half-written shard or manifest under its final name.
//
// In internal/ckpt and every package that imports it, direct calls to
// os.Create, os.WriteFile and os.Rename are flagged unless the enclosing
// function is the designated commit helper (marked //qusim:commit-helper
// in its doc comment). os.CreateTemp is the sanctioned first step of the
// protocol and stays allowed; writes that are genuinely not durability
// data (a trace export, a report) are suppressed with
// //qlint:ignore atomicrename <reason>.
var AtomicRename = &Analyzer{
	Name: "atomicrename",
	Doc: "checkpoint durability files must go through the ckpt write-temp-then-rename commit helper; " +
		"direct os.Create/os.WriteFile/os.Rename near checkpoint code breaks crash consistency",
	Run: runAtomicRename,
}

// atomicRenameBanned are the os entry points that can place bytes under a
// final name without the temp+fsync+rename ordering.
var atomicRenameBanned = map[string]string{
	"Create":    "creates the final file in place (a crash leaves a truncated file under its committed name)",
	"WriteFile": "writes the final file in place (a crash leaves a partial file under its committed name)",
	"Rename":    "renames without the fsync ordering of the commit helper (the rename can be durable before the data is)",
}

func runAtomicRename(pass *Pass) {
	if !unitImports(pass.Pkg, ckptPath) {
		return
	}
	for _, f := range pass.Files {
		eachFuncBody(f, func(doc *ast.CommentGroup, name string, body *ast.BlockStmt) {
			if docHasMarker(doc, "//qusim:commit-helper") {
				return
			}
			walkBody(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
					return true
				}
				why, banned := atomicRenameBanned[fn.Name()]
				if !banned {
					return true
				}
				pass.Reportf(call.Pos(),
					"os.%s in checkpoint-adjacent code %s: route durability commits through the //qusim:commit-helper (ckpt's temp-fsync-rename path)",
					fn.Name(), why)
				return true
			})
		})
	}
}
