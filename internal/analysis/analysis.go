// Package analysis is qlint's analyzer framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface the repo's domain analyzers need. The build environment pins the
// module to the standard library, so instead of importing x/tools the
// package defines the same shapes (Analyzer, Pass, Diagnostic) on top of
// go/ast + go/types, loads packages itself (see load.go), and keeps the
// analyzer Run functions written in the exact style of x/tools analyzers —
// porting them onto the real framework is a mechanical change of import
// path if the dependency ever becomes available.
//
// The analyzers themselves encode the simulator's cross-cutting invariants
// (DESIGN.md §10): every rank executes the same ordered collective
// sequence (collectiveorder), checkpoint durability goes through the
// write-temp-fsync-rename commit helper (atomicrename), telemetry handles
// are only touched through their nil-safe methods (nilsafetelemetry),
// tests restore the process globals they mutate (globalcleanup), and
// //qusim:hot kernel loops stay allocation-free (hotalloc).
//
// Suppression: a comment of the form
//
//	//qlint:ignore <analyzer> <reason>
//
// silences that analyzer on the same line, on the line below (when the
// directive stands alone), or — when it appears in a function's doc
// comment — throughout that function. The reason is mandatory; a
// reason-less directive is itself a diagnostic, so every suppression in
// the tree documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one qlint check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `qlint -help` prints: the
	// invariant enforced and the failure it prevents.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package (a "unit": a package's sources,
// optionally merged with its in-package test files, or an external _test
// package) through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic at pos carrying suggested fixes.
func (p *Pass) ReportFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Edit builds a TextEdit replacing the source range [from, to) with
// newText, resolving positions through the pass's FileSet.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	pf := p.Fset.Position(from)
	pt := p.Fset.Position(to)
	return TextEdit{Filename: pf.Filename, Start: pf.Offset, End: pt.Offset, NewText: newText}
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes are machine-applicable remedies (may be empty). They are
	// advisory: qlint -fix applies them, plain runs just report.
	Fixes []SuggestedFix
}

// String renders the stable diagnostic format golden tests pin down:
// path:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns every qlint analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicRename,
		CollectiveOrder,
		ErrWrap,
		FSOps,
		GlobalCleanup,
		GoroutineLife,
		HotAlloc,
		LockScope,
		NilSafeTelemetry,
	}
}

// byName resolves analyzer names (for -only selection and for validating
// //qlint:ignore directives).
func byName() map[string]*Analyzer {
	m := make(map[string]*Analyzer)
	for _, a := range All() {
		m[a.Name] = a
	}
	return m
}

// Select returns the analyzers named in names (comma-split upstream), or
// an error naming the first unknown one. An empty list selects all.
func Select(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	m := byName()
	var out []*Analyzer
	for _, n := range names {
		a, ok := m[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, knownNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func knownNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// RunConfig tunes one RunUnit invocation.
type RunConfig struct {
	// StrictIgnores turns stale //qlint:ignore directives — ones whose
	// analyzer ran but produced no diagnostic they could suppress — into
	// diagnostics of their own, so dead suppressions are exit-code
	// visible instead of rotting in place.
	StrictIgnores bool
}

// RunUnit applies the analyzers to one loaded unit and returns the
// surviving diagnostics: suppressions applied, directive errors appended.
func RunUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	return RunUnitCfg(u, analyzers, RunConfig{})
}

// RunUnitCfg is RunUnit with explicit configuration.
func RunUnitCfg(u *Unit, analyzers []*Analyzer, cfg RunConfig) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}
	dirs, dirDiags := collectDirectives(u)
	out := filterSuppressed(raw, dirs)
	out = append(out, dirDiags...)
	if cfg.StrictIgnores {
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, dir := range dirs {
			// Only judge directives whose analyzer actually ran this
			// invocation: under -only a subset, the others are unknown,
			// not stale.
			if dir.used || !ran[dir.analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "qlint",
				Message: fmt.Sprintf("stale qlint:ignore: no %s diagnostic fires here anymore — delete the directive",
					dir.analyzer),
			})
		}
	}
	return out
}

// SortDiagnostics orders diagnostics for deterministic output.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
