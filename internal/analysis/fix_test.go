package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fixDiag wraps edits (which carry their own filenames) in a diagnostic.
func fixDiag(edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Analyzer: "test",
		Message:  "m",
		Fixes:    []SuggestedFix{{Message: "fix", Edits: edits}},
	}
}

func TestFixableCount(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "a"},
		{Analyzer: "b", Fixes: []SuggestedFix{{Message: "f"}}},
		{Analyzer: "c", Fixes: []SuggestedFix{{Message: "f"}, {Message: "g"}}},
	}
	if n := FixableCount(diags); n != 2 {
		t.Errorf("FixableCount = %d, want 2", n)
	}
}

func TestApplyFixesSingleEdit(t *testing.T) {
	path := writeTemp(t, "alpha beta gamma\n")
	out, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{Filename: path, Start: 6, End: 10, NewText: "BETA"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out[path]); got != "alpha BETA gamma\n" {
		t.Errorf("rewritten content %q", got)
	}
}

func TestApplyFixesMultipleEditsKeepOffsets(t *testing.T) {
	// Two edits in one file, applied back-to-front so the earlier edit's
	// length change cannot shift the later edit's offsets.
	path := writeTemp(t, "aa bb cc\n")
	out, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{Filename: path, Start: 0, End: 2, NewText: "AAAA"}),
		fixDiag(TextEdit{Filename: path, Start: 6, End: 8, NewText: "C"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out[path]); got != "AAAA bb C\n" {
		t.Errorf("rewritten content %q", got)
	}
}

func TestApplyFixesOverlapFirstWins(t *testing.T) {
	// Overlapping edits: the earlier diagnostic's fix applies, the later
	// one is dropped (its diagnostic fires again next run).
	path := writeTemp(t, "abcdef\n")
	out, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{Filename: path, Start: 1, End: 4, NewText: "X"}),
		fixDiag(TextEdit{Filename: path, Start: 3, End: 5, NewText: "Y"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out[path]); got != "aXef\n" {
		t.Errorf("overlap resolution produced %q, want %q", got, "aXef\n")
	}
}

func TestApplyFixesRangeValidation(t *testing.T) {
	path := writeTemp(t, "short\n")
	cases := []TextEdit{
		{Filename: path, Start: -1, End: 2, NewText: "x"},
		{Filename: path, Start: 4, End: 2, NewText: "x"},
		{Filename: path, Start: 0, End: 100, NewText: "x"},
	}
	for _, e := range cases {
		if _, err := ApplyFixes([]Diagnostic{fixDiag(e)}); err == nil {
			t.Errorf("edit [%d,%d) accepted on a %d-byte file", e.Start, e.End, 6)
		}
	}
}

func TestApplyFixesMissingFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "gone.go")
	if _, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{Filename: missing, Start: 0, End: 0, NewText: "x"}),
	}); err == nil {
		t.Error("ApplyFixes succeeded on a nonexistent file")
	}
}

func TestApplyFixesNoFixes(t *testing.T) {
	out, err := ApplyFixes([]Diagnostic{{Analyzer: "a", Message: "no fix"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("fix-free diagnostics produced %d rewritten files", len(out))
	}
}

func TestUnifiedDiffIdentical(t *testing.T) {
	if d := UnifiedDiff("x.go", []byte("same\n"), []byte("same\n")); d != "" {
		t.Errorf("identical contents produced a diff:\n%s", d)
	}
}

func TestUnifiedDiffSimpleChange(t *testing.T) {
	oldSrc := "a\nb\nc\nd\ne\nf\ng\nh\n"
	newSrc := "a\nb\nc\nD\ne\nf\ng\nh\n"
	d := UnifiedDiff("x.go", []byte(oldSrc), []byte(newSrc))
	for _, want := range []string{"--- x.go", "+++ x.go", "-d", "+D", "@@ -1,7 +1,7 @@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	// 3-line context: the far ends of an 8-line file with a middle change
	// stay inside one hunk, but a change on line 4 keeps line 8 out.
	if strings.Contains(d, " h") {
		t.Errorf("context extends beyond 3 lines:\n%s", d)
	}
}

func TestUnifiedDiffTwoHunks(t *testing.T) {
	var oldLines, newLines []string
	for i := 0; i < 30; i++ {
		oldLines = append(oldLines, "line")
		newLines = append(newLines, "line")
	}
	oldLines[2], newLines[2] = "old-top", "new-top"
	oldLines[27], newLines[27] = "old-bottom", "new-bottom"
	d := UnifiedDiff("x.go",
		[]byte(strings.Join(oldLines, "\n")+"\n"),
		[]byte(strings.Join(newLines, "\n")+"\n"))
	if got := strings.Count(d, "@@"); got != 4 { // two hunks, two @@ markers each
		t.Errorf("expected 2 hunks (4 @@ markers), got %d:\n%s", got/2*2, d)
	}
	for _, want := range []string{"-old-top", "+new-top", "-old-bottom", "+new-bottom"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q", want)
		}
	}
}

func TestUnifiedDiffAddRemove(t *testing.T) {
	d := UnifiedDiff("x.go", []byte("a\nb\n"), []byte("a\nmid\nb\n"))
	if !strings.Contains(d, "+mid") {
		t.Errorf("insertion missing from diff:\n%s", d)
	}
	d = UnifiedDiff("x.go", []byte("a\nb\nc\n"), []byte("a\nc\n"))
	if !strings.Contains(d, "-b") {
		t.Errorf("deletion missing from diff:\n%s", d)
	}
	// Whole-file creation and truncation.
	if d := UnifiedDiff("x.go", nil, []byte("new\n")); !strings.Contains(d, "+new") {
		t.Errorf("creation diff wrong:\n%s", d)
	}
	if d := UnifiedDiff("x.go", []byte("old\n"), nil); !strings.Contains(d, "-old") {
		t.Errorf("truncation diff wrong:\n%s", d)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errwrap", Message: "msg"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: errwrap: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortDiagnosticsOrder(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer, Message: msg}
		d.Pos.Filename, d.Pos.Line, d.Pos.Column = file, line, col
		return d
	}
	ds := []Diagnostic{
		mk("b.go", 1, 1, "a", "m"),
		mk("a.go", 2, 1, "a", "m"),
		mk("a.go", 1, 2, "a", "m"),
		mk("a.go", 1, 1, "b", "m"),
		mk("a.go", 1, 1, "a", "n"),
		mk("a.go", 1, 1, "a", "m"),
	}
	SortDiagnostics(ds)
	want := []string{
		"a.go:1:1: a: m",
		"a.go:1:1: a: n",
		"a.go:1:1: b: m",
		"a.go:1:2: a: m",
		"a.go:2:1: a: m",
		"b.go:1:1: a: m",
	}
	for i, w := range want {
		if ds[i].String() != w {
			t.Errorf("position %d: %q, want %q", i, ds[i].String(), w)
		}
	}
}
