package analysis

import "testing"

// TestParseFormatVerbs pins the format scanner errwrap uses to map verbs
// to operand indexes and to byte-offset fix spans inside the raw quoted
// literal.
func TestParseFormatVerbs(t *testing.T) {
	type verb struct {
		arg   int
		verb  byte
		start int
		end   int
	}
	cases := []struct {
		name string
		raw  string
		want []verb
		ok   bool
	}{
		{"plain", `"load %s: %v"`, []verb{{0, 's', 6, 8}, {1, 'v', 10, 12}}, true},
		{"wrap", `"%w: %w"`, []verb{{0, 'w', 1, 3}, {1, 'w', 5, 7}}, true},
		{"escapedPercent", `"100%% done %d"`, []verb{{0, 'd', 12, 14}}, true},
		{"flags", `"%+v %-10s %#x % d %08.3f"`, []verb{{0, 'v', 1, 4}, {1, 's', 5, 10}, {2, 'x', 11, 14}, {3, 'd', 15, 18}, {4, 'f', 19, 25}}, true},
		{"starWidth", `"%*d"`, []verb{{1, 'd', 1, 4}}, true}, // * consumes arg 0
		{"starPrecision", `"%.*f"`, []verb{{1, 'f', 1, 5}}, true},
		{"bothStars", `"%*.*f"`, []verb{{2, 'f', 1, 6}}, true},
		{"indexed", `"%[1]d"`, nil, false}, // explicit indexes: bail out
		{"trailingPercent", `%`, nil, true},
		{"noVerbs", `"no formatting here"`, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseFormatVerbs(tc.raw)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d verbs %+v, want %d", len(got), got, len(tc.want))
			}
			for i, w := range tc.want {
				g := got[i]
				if g.arg != w.arg || g.verb != w.verb || g.start != w.start || g.end != w.end {
					t.Errorf("verb %d: got {arg:%d %q [%d,%d)}, want {arg:%d %q [%d,%d)}",
						i, g.arg, g.verb, g.start, g.end, w.arg, w.verb, w.start, w.end)
				}
				// The span must slice the raw literal back to the verb text.
				if w.end <= len(tc.raw) && tc.raw[w.start] != '%' {
					t.Errorf("verb %d span does not start at %%: %q", i, tc.raw[w.start:w.end])
				}
			}
		})
	}
}
