package analysis

import (
	"go/ast"
	"go/types"
)

// Origin tracking: the half of the v2 engine that answers "where did this
// value come from". For one function body it records every expression
// assigned to each local object (:=, =, var decls), so analyzers can chase
// a value through intermediate locals back to the call that produced it —
// errwrap uses it to tell an error born in a classified package from a
// strconv parse error, and lockscope uses it to tell an unbuffered channel
// from a buffered one. Tracking is intra-procedural and flow-insensitive
// (a source anywhere in the body counts), which over-approximates: a
// value MAY derive from a source. Analyzers that flag on derivation
// therefore only do so when the over-approximation cannot hurt (the fix
// is correct for every origin, or the rule is scoped by package).
type Origins struct {
	pass    *Pass
	sources map[types.Object][]ast.Expr
}

// collectOrigins builds the origin map for one function body. Nested
// function literals are included: a closure assigning an outer local is a
// source for it.
func collectOrigins(pass *Pass, body *ast.BlockStmt) *Origins {
	o := &Origins{pass: pass, sources: map[types.Object][]ast.Expr{}}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			o.sources[obj] = append(o.sources[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				// a, b := f(): every LHS derives from the one call.
				for _, lhs := range s.Lhs {
					record(lhs, s.Rhs[0])
				}
				return true
			}
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					record(s.Lhs[i], rhs)
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					for _, name := range vs.Names {
						record(name, vs.Values[0])
					}
					continue
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) {
						record(vs.Names[i], v)
					}
				}
			}
		}
		return true
	})
	return o
}

// DerivesFromCall reports whether e's value can derive — through local
// assignments, up to a small depth — from a call whose callee satisfies
// pred. Interface method calls resolve to the interface's declared
// method, so pred sees the package that owns the contract.
func (o *Origins) DerivesFromCall(e ast.Expr, pred func(fn *types.Func) bool) bool {
	return o.derives(e, pred, map[types.Object]bool{}, 4)
}

func (o *Origins) derives(e ast.Expr, pred func(fn *types.Func) bool, visiting map[types.Object]bool, depth int) bool {
	if depth == 0 || e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(o.pass.Info, x); fn != nil && pred(fn) {
				found = true
				return false
			}
		case *ast.Ident:
			obj := o.pass.Info.Uses[x]
			if obj == nil || visiting[obj] {
				return true
			}
			visiting[obj] = true
			for _, src := range o.sources[obj] {
				if o.derives(src, pred, visiting, depth-1) {
					found = true
					break
				}
			}
			delete(visiting, obj)
			if found {
				return false
			}
		}
		return true
	})
	return found
}

// errorIface is the predeclared error interface, resolved once.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (the
// static-type test errwrap keys on).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}

// unitImportsTransitive reports whether the unit's package is path, or
// reaches it through intra-module imports (stdlib subtrees are never
// descended — they cannot import back into the module).
func unitImportsTransitive(pkg *types.Package, path string) bool {
	if pkg.Path() == path || pkg.Path() == path+"_test" {
		return true
	}
	seen := map[string]bool{}
	var walk func(p *types.Package) bool
	walk = func(p *types.Package) bool {
		if p.Path() == path {
			return true
		}
		if seen[p.Path()] {
			return false
		}
		seen[p.Path()] = true
		for _, imp := range p.Imports() {
			if isModulePath(imp.Path()) && walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(pkg)
}

// isModulePath reports whether an import path belongs to this module.
func isModulePath(path string) bool {
	return path == modulePathPrefix || len(path) > len(modulePathPrefix) &&
		path[:len(modulePathPrefix)+1] == modulePathPrefix+"/"
}
