package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` as the body of func f in a scratch package and
// returns the block plus the file's AST for statement lookup.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parsing scratch body: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// findStmt returns the first statement in body (descending into nested
// blocks) for which pred is true.
func findStmt(body *ast.BlockStmt, pred func(ast.Stmt) bool) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && pred(s) {
			found = s
		}
		return found == nil
	})
	return found
}

func callNamed(name string) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// reaches reports whether the block of `to` is reachable from the block
// of `from` in g.
func reaches(g *CFG, from, to ast.Stmt) bool {
	fb, tb := g.BlockOf(from), g.BlockOf(to)
	if fb == nil || tb == nil {
		return false
	}
	return g.Reachable(fb)[tb]
}

func TestCFGStraightLine(t *testing.T) {
	body := parseBody(t, "a()\nb()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	if g.BlockOf(a) != g.BlockOf(bs) {
		t.Error("straight-line statements split across blocks")
	}
	if g.BlockOf(a) != g.Entry {
		t.Error("first statement not in the entry block")
	}
	if !g.Reachable(g.Entry)[g.Exit] {
		t.Error("exit not reachable from entry")
	}
}

func TestCFGIfJoin(t *testing.T) {
	body := parseBody(t, "if cond() {\n\ta()\n} else {\n\tb()\n}\nc()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	c := findStmt(body, callNamed("c"))
	if g.BlockOf(a) == g.BlockOf(bs) {
		t.Error("if arms share a block")
	}
	if !reaches(g, a, c) || !reaches(g, bs, c) {
		t.Error("join after if not reachable from both arms")
	}
	if reaches(g, a, bs) || reaches(g, bs, a) {
		t.Error("one if arm reaches the other")
	}
}

func TestCFGAfterReturn(t *testing.T) {
	// The return's natural successor resumes at the statements the rank
	// would have executed — here b() — while the real edge goes to Exit.
	body := parseBody(t, "if cond() {\n\treturn\n}\nb()")
	g := BuildCFG(body)
	ret := findStmt(body, func(s ast.Stmt) bool { _, ok := s.(*ast.ReturnStmt); return ok }).(*ast.ReturnStmt)
	bs := findStmt(body, callNamed("b"))
	after := g.AfterReturn(ret)
	if after == nil {
		t.Fatal("return has no natural-successor block")
	}
	if !g.Reachable(after)[g.BlockOf(bs)] {
		t.Error("b() not reachable from the return's natural successor")
	}
	if !g.Reachable(g.BlockOf(ret))[g.Exit] {
		t.Error("return block has no path to exit")
	}
	// The natural successor has no real incoming edge: it is hypothetical.
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == after {
				t.Error("natural-successor block has a real incoming edge")
			}
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	body := parseBody(t, "for i := 0; i < n; i++ {\n\ta()\n}\nb()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	if !reaches(g, a, a) {
		t.Error("loop body cannot re-reach itself via the back edge")
	}
	if !reaches(g, a, bs) {
		t.Error("statement after the loop unreachable from the body")
	}
}

func TestCFGInfiniteLoopBreak(t *testing.T) {
	body := parseBody(t, "for {\n\tif cond() {\n\t\tbreak\n\t}\n\ta()\n}\nb()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	if !reaches(g, a, bs) {
		t.Error("break does not connect the loop to the after-block")
	}
	// Without the break a condition-free for{} would not reach b: assert
	// the head has no direct edge into the after-block.
	head := g.Entry
	after := g.BlockOf(bs)
	for _, s := range head.Succs {
		if s == after {
			t.Error("condition-free for{} has a direct head → after edge")
		}
	}
}

func TestCFGContinue(t *testing.T) {
	body := parseBody(t, "for i := 0; i < n; i++ {\n\tif cond() {\n\t\tcontinue\n\t}\n\ta()\n}")
	g := BuildCFG(body)
	cont := findStmt(body, func(s ast.Stmt) bool {
		br, ok := s.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE
	})
	a := findStmt(body, callNamed("a"))
	// continue re-enters the body, so a() is reachable again through the
	// back edge — but not as the continue's direct fallthrough.
	if !reaches(g, cont, a) {
		t.Error("continue does not re-enter the loop body")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	body := parseBody(t, "for _, v := range xs {\n\ta(v)\n}\nb()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	if !reaches(g, a, a) {
		t.Error("range body cannot re-reach itself")
	}
	if !reaches(g, a, bs) {
		t.Error("statement after the range unreachable from the body")
	}
	// Empty range: the after-block must be reachable without entering the
	// body at all.
	if !g.Reachable(g.Entry)[g.BlockOf(bs)] {
		t.Error("after-block unreachable when the range is empty")
	}
}

func TestCFGSwitch(t *testing.T) {
	body := parseBody(t, "switch x {\ncase 1:\n\ta()\ncase 2:\n\tb()\n}\nc()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	c := findStmt(body, callNamed("c"))
	if g.BlockOf(a) == g.BlockOf(bs) {
		t.Error("switch cases share a block")
	}
	if !reaches(g, a, c) || !reaches(g, bs, c) {
		t.Error("after-switch unreachable from a case")
	}
	if reaches(g, a, bs) {
		t.Error("non-fallthrough case reaches the next case")
	}
	// No default: the head must skip to after directly.
	if !g.Reachable(g.Entry)[g.BlockOf(c)] {
		t.Error("defaultless switch cannot skip every case")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	body := parseBody(t, "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	if !reaches(g, a, bs) {
		t.Error("fallthrough does not edge into the next case")
	}
	if !switchHasDefault(body.List[0].(*ast.SwitchStmt).Body) {
		t.Error("switchHasDefault missed the default clause")
	}
}

func TestCFGSelect(t *testing.T) {
	body := parseBody(t, "select {\ncase v := <-ch:\n\ta(v)\ncase ch2 <- 1:\n\tb()\n}\nc()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	c := findStmt(body, callNamed("c"))
	if g.BlockOf(a) == g.BlockOf(bs) {
		t.Error("select cases share a block")
	}
	if !reaches(g, a, c) || !reaches(g, bs, c) {
		t.Error("after-select unreachable from a case")
	}
	// The comm statements themselves belong to their case's block.
	recv := findStmt(body, func(s ast.Stmt) bool { _, ok := s.(*ast.AssignStmt); return ok })
	if g.BlockOf(recv) == nil || g.BlockOf(recv) != g.BlockOf(a) {
		t.Error("comm statement not placed in its case block")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	body := parseBody(t, "if cond() {\n\tpanic(\"boom\")\n}\nb()")
	g := BuildCFG(body)
	p := findStmt(body, callNamed("panic"))
	bs := findStmt(body, callNamed("b"))
	if reaches(g, p, bs) {
		t.Error("panic block falls through to the next statement")
	}
	if !g.Reachable(g.BlockOf(p))[g.Exit] {
		t.Error("panic block has no exit edge")
	}
}

func TestCFGTypeSwitchAndLabeled(t *testing.T) {
	body := parseBody(t, "loop:\n\tfor {\n\t\tswitch y := x.(type) {\n\t\tcase int:\n\t\t\ta(y)\n\t\tdefault:\n\t\t\tbreak loop\n\t\t}\n\t}\nb()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	// Labeled break falls back to the innermost construct — here the
	// switch, whose after-block re-enters the loop; b() stays reachable
	// through the loop's own break handling (conservative, adds edges).
	if g.BlockOf(a) == nil {
		t.Fatal("type-switch case body not lowered")
	}
	if !g.Reachable(g.Entry)[g.BlockOf(a)] {
		t.Error("type-switch case unreachable from entry")
	}
	_ = bs
}

func TestCFGReachableFromAny(t *testing.T) {
	body := parseBody(t, "if cond() {\n\ta()\n} else {\n\tb()\n}\nc()")
	g := BuildCFG(body)
	a := findStmt(body, callNamed("a"))
	bs := findStmt(body, callNamed("b"))
	c := findStmt(body, callNamed("c"))
	union := g.ReachableFromAny([]*Block{g.BlockOf(a), g.BlockOf(bs)})
	if !union[g.BlockOf(a)] || !union[g.BlockOf(bs)] || !union[g.BlockOf(c)] {
		t.Error("union of reachable sets misses a block")
	}
	if len(g.ReachableFromAny(nil)) != 0 {
		t.Error("empty start set yields nonempty reachability")
	}
	if len(g.Reachable(nil)) != 0 {
		t.Error("nil start block yields nonempty reachability")
	}
}

func TestCFGDeadCodeAfterTerminator(t *testing.T) {
	// Statements after an unconditional return still get blocks (analyzers
	// may ask about them) but no incoming edges from live code.
	body := parseBody(t, "return\nb()") //nolint — intentionally unreachable
	g := BuildCFG(body)
	bs := findStmt(body, callNamed("b"))
	if g.BlockOf(bs) == nil {
		t.Fatal("dead statement not assigned a block")
	}
	if g.Reachable(g.Entry)[g.BlockOf(bs)] {
		t.Error("dead code reachable from entry")
	}
}

func TestCFGBlocksInvariant(t *testing.T) {
	body := parseBody(t, "if cond() {\n\ta()\n}\nfor range xs {\n\tb()\n}")
	g := BuildCFG(body)
	if g.Blocks[0] != g.Entry {
		t.Error("Blocks[0] is not Entry")
	}
	if g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Error("Blocks does not end with Exit")
	}
	seen := map[int]bool{}
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			t.Errorf("duplicate block index %d", blk.Index)
		}
		seen[blk.Index] = true
	}
}
