package analysis

import (
	"go/ast"
	"go/token"
)

// The v2 engine's control-flow graph. PR 5's analyzers walked syntax and
// approximated "can X happen before/after Y" with source positions; that
// breaks down exactly where the repo's bugs live — early returns, branch
// arms that never rejoin, loops that re-enter a lock region. BuildCFG
// lowers one function body to basic blocks of statements with successor
// edges, so analyzers ask reachability questions instead of comparing
// line numbers.
//
// The model is deliberately sized for lint, not codegen:
//
//   - blocks hold ast.Stmt nodes in execution order; expressions are not
//     decomposed (intra-statement evaluation order never matters to the
//     analyzers);
//   - if/else, for/range, switch/type-switch/select, return, break,
//     continue and goto-free straight-line code are modeled exactly;
//     labeled break/continue fall back to the innermost construct and a
//     goto conservatively edges to the function exit (the repo has
//     neither, and the approximation only ever adds edges — analyzers
//     that key on reachability stay sound against false "unreachable"
//     answers);
//   - function literals are opaque single statements: they get their own
//     CFG when an analyzer asks for one, mirroring walkBody's scoping;
//   - panic calls end their block with an exit edge (a panicking path
//     leaves the function).
type CFG struct {
	// Entry is the function's first block; Exit is the single synthetic
	// block every return/panic/fall-off edge targets.
	Entry, Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block

	// stmtBlock maps each statement to the block executing it.
	stmtBlock map[ast.Stmt]*Block
	// afterReturn maps each return statement to the block control would
	// have reached had the return been a no-op — the "natural successor"
	// path-sensitive desertion checks reason about.
	afterReturn map[*ast.ReturnStmt]*Block
}

// Block is one straight-line run of statements.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// cfgBuilder carries the loop/switch context while lowering.
type cfgBuilder struct {
	g   *CFG
	cur *Block
	// break/continue targets of the innermost enclosing constructs.
	breakTo    []*Block
	continueTo []*Block
}

// BuildCFG lowers one function body. The body may be a FuncDecl's or a
// FuncLit's; nested literals are not descended into.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{
		stmtBlock:   map[ast.Stmt]*Block{},
		afterReturn: map[*ast.ReturnStmt]*Block{},
	}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	last := b.stmts(body.List)
	// Fall-off-the-end edge.
	b.edge(last, g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge appends an edge from → to, tolerating a nil from (unreachable
// code after a terminator keeps building into a fresh detached block).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts lowers a statement list starting at b.cur and returns the block
// holding control after the list (nil when every path terminated).
func (b *cfgBuilder) stmts(list []ast.Stmt) *Block {
	for _, s := range list {
		if b.cur == nil {
			// Dead code after a terminator still gets blocks (analyzers
			// may ask about it), just no incoming edge.
			b.cur = b.newBlock()
		}
		b.stmt(s)
	}
	return b.cur
}

// stmt lowers one statement, updating b.cur (nil when control left).
func (b *cfgBuilder) stmt(s ast.Stmt) {
	g := b.g
	b.cur.Stmts = append(b.cur.Stmts, s)
	g.stmtBlock[s] = b.cur
	switch st := s.(type) {
	case *ast.ReturnStmt:
		after := b.newBlock()
		g.afterReturn[st] = after
		b.edge(b.cur, g.Exit)
		// No edge into after: it is the would-be successor, reachable
		// only in the hypothetical where the return is removed. Control
		// resumes building there so the rest of the list lands in it.
		b.cur = after
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if n := len(b.breakTo); n > 0 {
				b.edge(b.cur, b.breakTo[n-1])
			} else {
				b.edge(b.cur, g.Exit)
			}
		case token.CONTINUE:
			if n := len(b.continueTo); n > 0 {
				b.edge(b.cur, b.continueTo[n-1])
			} else {
				b.edge(b.cur, g.Exit)
			}
		case token.FALLTHROUGH:
			// Leave the block open: the switch lowering sees the case end
			// and edges it into the next case instead of the after-block.
			return
		case token.GOTO:
			// Conservative exit edge.
			b.edge(b.cur, g.Exit)
		}
		b.cur = nil
	case *ast.IfStmt:
		b.lowerIf(st)
	case *ast.ForStmt:
		b.lowerFor(st)
	case *ast.RangeStmt:
		b.lowerRange(st)
	case *ast.SwitchStmt:
		b.lowerSwitch(st.Body, switchHasDefault(st.Body))
	case *ast.TypeSwitchStmt:
		b.lowerSwitch(st.Body, switchHasDefault(st.Body))
	case *ast.SelectStmt:
		b.lowerSelect(st)
	case *ast.BlockStmt:
		b.cur = b.stmts(st.List)
	case *ast.LabeledStmt:
		b.stmt(st.Stmt)
	case *ast.ExprStmt:
		if isPanicCall(st.X) {
			b.edge(b.cur, g.Exit)
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) lowerIf(st *ast.IfStmt) {
	// Init statement (if any) and the condition run in the current block
	// (already appended). Arms get their own blocks; join after.
	cond := b.cur
	join := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.edge(b.stmts(st.Body.List), join)
	if st.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(st.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) lowerFor(st *ast.ForStmt) {
	head := b.cur
	bodyBlk := b.newBlock()
	after := b.newBlock()
	b.edge(head, bodyBlk)
	if st.Cond != nil {
		// Condition may be false on entry. A condition-free for{} reaches
		// the after-block only via break, which adds its own edge.
		b.edge(head, after)
	}
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, bodyBlk)
	b.cur = bodyBlk
	end := b.stmts(st.Body.List)
	b.edge(end, bodyBlk) // back edge (through post/cond re-check)
	if st.Cond != nil {
		b.edge(end, after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = after
}

func (b *cfgBuilder) lowerRange(st *ast.RangeStmt) {
	head := b.cur
	bodyBlk := b.newBlock()
	after := b.newBlock()
	b.edge(head, bodyBlk)
	b.edge(head, after) // empty range
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, bodyBlk)
	b.cur = bodyBlk
	end := b.stmts(st.Body.List)
	b.edge(end, bodyBlk)
	b.edge(end, after)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = after
}

func (b *cfgBuilder) lowerSwitch(body *ast.BlockStmt, hasDefault bool) {
	head := b.cur
	after := b.newBlock()
	b.breakTo = append(b.breakTo, after)
	var caseEnds []*Block
	var caseStarts []*Block
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.g.stmtBlock[cc] = blk
		caseStarts = append(caseStarts, blk)
		b.edge(head, blk)
		b.cur = blk
		end := b.stmts(cc.Body)
		// fallthrough edges to the next case are added below when the
		// terminator was a fallthrough; a plain end edges to after.
		caseEnds = append(caseEnds, end)
	}
	for i, end := range caseEnds {
		if end == nil {
			continue
		}
		if fallsThrough(body.List[i]) && i+1 < len(caseStarts) {
			b.edge(end, caseStarts[i+1])
		} else {
			b.edge(end, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

// fallsThrough reports whether a case clause ends in a fallthrough.
func fallsThrough(cs ast.Stmt) bool {
	cc, ok := cs.(*ast.CaseClause)
	if !ok || len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) lowerSelect(st *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	b.breakTo = append(b.breakTo, after)
	hasDefault := false
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.g.stmtBlock[cc] = blk
		if cc.Comm != nil {
			blk.Stmts = append(blk.Stmts, cc.Comm)
			b.g.stmtBlock[cc.Comm] = blk
		}
		b.edge(head, blk)
		b.cur = blk
		b.edge(b.stmts(cc.Body), after)
	}
	// A select with no default blocks until a case fires; every exit is
	// through a case, so no head → after edge either way (a case always
	// exists in well-formed code). With a default the default case IS one
	// of the clauses, already edged.
	_ = hasDefault
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

// switchHasDefault reports whether a switch/type-switch body has a
// default clause.
func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isPanicCall reports whether an expression statement is a direct call to
// the predeclared panic (identifier match; shadowing panic would be its
// own crime).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// BlockOf returns the block executing stmt (nil when stmt is not in this
// CFG — e.g. inside a nested function literal).
func (g *CFG) BlockOf(s ast.Stmt) *Block { return g.stmtBlock[s] }

// AfterReturn returns the natural-successor block of a return statement:
// where control would resume had the return not fired. Desertion checks
// use it to ask "what would this rank have executed next".
func (g *CFG) AfterReturn(r *ast.ReturnStmt) *Block { return g.afterReturn[r] }

// Reachable computes the block set reachable from `from` (inclusive).
func (g *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	if from == nil {
		return seen
	}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// ReachableFromAny unions Reachable over several start blocks.
func (g *CFG) ReachableFromAny(from []*Block) map[*Block]bool {
	seen := map[*Block]bool{}
	for _, f := range from {
		for b := range g.Reachable(f) {
			seen[b] = true
		}
	}
	return seen
}
