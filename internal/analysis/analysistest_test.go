package analysis

// The corpus harness: each analyzer has a fixture package under
// testdata/src/<name> whose files carry x/tools-style expectations —
//
//	code() // want `regexp` `another regexp`
//
// Each quoted (or backquoted) regexp must match exactly one diagnostic
// reported on that line, rendered as "analyzer: message" so expectations
// can pin the analyzer; every diagnostic must be claimed by a want. The
// fixtures double as the living specification: at least one flagged and
// one suppressed case per analyzer, with the suppression reasons written
// the way real ones should be.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// corpusDiagnostics loads testdata/src/<name> and returns the surviving
// diagnostics from running the given analyzers over its units.
func corpusDiagnostics(t *testing.T, name string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatalf("corpus %s loaded no units", name)
	}
	var diags []Diagnostic
	for _, u := range units {
		diags = append(diags, RunUnit(u, analyzers)...)
	}
	SortDiagnostics(diags)
	return diags
}

// wantRe matches the expectation tail of a corpus line.
var wantRe = regexp.MustCompile(`// want (.*)$`)

type wantExpect struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the // want expectations from every .go file of a
// corpus directory.
func parseWants(t *testing.T, dir string) []*wantExpect {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantExpect
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want expectation %q", e.Name(), i+1, rest)
				}
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: unquoting %q: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &wantExpect{file: e.Name(), line: i + 1, re: re})
				rest = strings.TrimSpace(rest[len(q):])
			}
		}
	}
	return wants
}

// runCorpus checks one analyzer's fixture package against its want
// expectations.
func runCorpus(t *testing.T, analyzerName string) {
	t.Helper()
	analyzers, err := Select([]string{analyzerName})
	if err != nil {
		t.Fatal(err)
	}
	diags := corpusDiagnostics(t, analyzerName, analyzers)
	wants := parseWants(t, filepath.Join("testdata", "src", analyzerName))
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want expectations", analyzerName)
	}

	for _, d := range diags {
		rendered := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		base := filepath.Base(d.Pos.Filename)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s:%d: %s", base, d.Pos.Line, rendered)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re.String())
		}
	}
}

func TestCollectiveOrderCorpus(t *testing.T)  { runCorpus(t, "collectiveorder") }
func TestAtomicRenameCorpus(t *testing.T)     { runCorpus(t, "atomicrename") }
func TestFSOpsCorpus(t *testing.T)            { runCorpus(t, "fsops") }
func TestNilSafeTelemetryCorpus(t *testing.T) { runCorpus(t, "nilsafetelemetry") }
func TestGlobalCleanupCorpus(t *testing.T)    { runCorpus(t, "globalcleanup") }
func TestHotAllocCorpus(t *testing.T)         { runCorpus(t, "hotalloc") }
func TestErrWrapCorpus(t *testing.T)          { runCorpus(t, "errwrap") }
func TestGoroutineLifeCorpus(t *testing.T)    { runCorpus(t, "goroutinelife") }
func TestLockScopeCorpus(t *testing.T)        { runCorpus(t, "lockscope") }

// TestDirectiveDiagnostics pins the directive parser's own diagnostics:
// malformed //qlint:ignore comments are findings, not silent no-ops. The
// diagnostics land on the comment lines themselves, so the expectations
// are spelled here rather than as end-of-line want comments.
func TestDirectiveDiagnostics(t *testing.T) {
	diags := corpusDiagnostics(t, "qlintdirective", All())
	type expect struct {
		line int
		re   string
	}
	expects := []expect{
		{12, `^qlint: qlint:ignore needs an analyzer name and a reason$`},
		{18, `^qlint: qlint:ignore names unknown analyzer gofmtcheck \(have atomicrename, collectiveorder, errwrap, fsops, globalcleanup, goroutinelife, hotalloc, lockscope, nilsafetelemetry\)$`},
		{25, `^qlint: qlint:ignore globalcleanup needs a reason \(why does the invariant not apply here\?\)$`},
		// The multi-line edge case: a continuation comment on the next
		// line is not the directive's reason.
		{39, `^qlint: qlint:ignore globalcleanup needs a reason \(why does the invariant not apply here\?\)$`},
	}
	if len(diags) != len(expects) {
		for _, d := range diags {
			t.Logf("got: %s:%d: %s: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(expects))
	}
	for i, e := range expects {
		d := diags[i]
		rendered := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if d.Pos.Line != e.line || !regexp.MustCompile(e.re).MatchString(rendered) {
			t.Errorf("diagnostic %d at line %d: %q does not match line %d %q", i, d.Pos.Line, rendered, e.line, e.re)
		}
	}
}
