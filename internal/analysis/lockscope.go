package analysis

// LockScope enforces the repo's lock-hygiene rule: no blocking operation
// while holding a sync.Mutex/RWMutex. The dangerous composition is
// specific to this codebase — a collective entered under a lock deadlocks
// the whole world the moment any other rank's path to the same collective
// needs that lock, and an fsio call under a lock turns a chaos-injected
// disk stall into a process-wide stall. Blocking operations are: mpi
// collectives, calls into internal/fsio, the banned os file operations,
// and sends on provably-unbuffered channels.
//
// The analysis is a forward must-dataflow over the function's CFG:
// lock/unlock calls transfer a held-set keyed by receiver expression, the
// meet at joins is intersection (a mutex counts as held only when every
// inbound path holds it), and loops run to fixpoint. A deferred Unlock
// releases at function exit, so statements after `mu.Lock(); defer
// mu.Unlock()` are correctly treated as under the lock. Copying shared
// state under the lock and blocking outside it — the repo's idiom — never
// fires.

import (
	"go/ast"
	"go/types"
)

var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "no blocking call (mpi collective, fsio operation, banned os file op, " +
		"unbuffered channel send) while holding a sync.Mutex/RWMutex — a blocked " +
		"holder stalls every rank that needs the lock and can deadlock collectives",
	Run: runLockScope,
}

func runLockScope(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		eachFuncBody(f, func(_ *ast.CommentGroup, _ string, body *ast.BlockStmt) {
			checkLockScope(pass, body)
		})
	}
}

// lockState is the set of held mutexes, keyed by the receiver expression
// the Lock call used (types.ExprString form, so s.mu and s.mu match).
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// intersect returns the must-held meet of two states; a nil receiver is ⊤
// (unvisited) and yields the other side unchanged.
func (s lockState) intersect(o lockState) lockState {
	if s == nil {
		return o.clone()
	}
	out := lockState{}
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func checkLockScope(pass *Pass, body *ast.BlockStmt) {
	g := BuildCFG(body)
	origins := collectOrigins(pass, body)

	preds := map[*Block][]*Block{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	// Forward must-analysis to fixpoint. in[b] == nil means unvisited (⊤).
	in := make([]lockState, len(g.Blocks))
	out := make([]lockState, len(g.Blocks))
	in[g.Entry.Index] = lockState{}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			newIn := in[b.Index]
			if b != g.Entry {
				newIn = nil
				for _, p := range preds[b] {
					if out[p.Index] != nil {
						newIn = newIn.intersect(out[p.Index])
					}
				}
			}
			if newIn == nil {
				continue // unreachable so far
			}
			newOut := transferLocks(pass, g, b, newIn.clone(), nil, nil)
			if in[b.Index] == nil || !in[b.Index].equal(newIn) ||
				out[b.Index] == nil || !out[b.Index].equal(newOut) {
				in[b.Index], out[b.Index] = newIn, newOut
				changed = true
			}
		}
	}

	// Reporting pass over the solved states, deduplicated per call site
	// (a loop body is transferred once here, not per iteration).
	reported := map[ast.Node]bool{}
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		transferLocks(pass, g, b, in[b.Index].clone(), origins, reported)
	}
}

// transferLocks runs one block's statements through the lock transfer
// function and returns the out-state. When origins is non-nil it also
// reports blocking operations executed with a non-empty held set.
//
// A compound statement (if/for/switch/...) sits in the block that
// evaluates its header while its nested statements live in blocks of
// their own; the walk therefore skips any child statement the CFG maps
// to a different block — that code is transferred where it executes.
func transferLocks(pass *Pass, g *CFG, b *Block, held lockState, origins *Origins, reported map[ast.Node]bool) lockState {
	report := func(n ast.Node, what string) {
		if origins == nil || len(held) == 0 || reported[n] {
			return
		}
		reported[n] = true
		var names []string
		for k := range held {
			names = append(names, k)
		}
		// Deterministic single-name message: pick the lexicographic min.
		name := names[0]
		for _, n := range names[1:] {
			if n < name {
				name = n
			}
		}
		pass.Reportf(n.Pos(),
			"%s while holding %s: a blocked lock holder stalls every goroutine and rank contending for it — release the mutex first",
			what, name)
	}
	for _, s := range b.Stmts {
		if _, isDefer := s.(*ast.DeferStmt); isDefer {
			continue // runs at function exit, not here
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if st, ok := n.(ast.Stmt); ok && st != s {
				if owner := g.BlockOf(st); owner != nil && owner != b {
					return false
				}
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // gets its own eachFuncBody visit
			case *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				if origins != nil && isUnbufferedChan(pass, origins, x.Chan) {
					report(x, "send on an unbuffered channel")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, x)
				if key, op, ok := mutexOp(pass, x, fn); ok {
					if op {
						held[key] = true
					} else {
						delete(held, key)
					}
					return true
				}
				if what := blockingCall(fn, pass.Info, x); what != "" {
					report(x, what)
				}
			}
			return true
		})
	}
	return held
}

// mutexOp recognizes sync.Mutex/RWMutex Lock/Unlock family calls and
// returns the receiver key and whether the op acquires (true) or
// releases (false).
func mutexOp(pass *Pass, call *ast.CallExpr, fn *types.Func) (key string, acquires, ok bool) {
	if fn == nil {
		return "", false, false
	}
	isMu := methodIs(fn, "sync", "Mutex", fn.Name()) || methodIs(fn, "sync", "RWMutex", fn.Name())
	if !isMu {
		return "", false, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	case "TryLock", "TryRLock":
		// May or may not acquire; treating it as not-held keeps the
		// must-analysis sound for "definitely held" reporting.
		return "", false, false
	}
	return "", false, false
}

// blockingCall classifies a call as blocking for lock-scope purposes,
// returning a human description or "".
func blockingCall(fn *types.Func, info *types.Info, call *ast.CallExpr) string {
	if name := collectiveCallee(info, call); name != "" {
		return "mpi collective " + name
	}
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Pkg().Path() == fsioPath {
		return "fsio." + fn.Name() + " call"
	}
	if fn.Pkg().Path() == "os" && fsOpsBanned[fn.Name()] && recvNamed(fn) == "" {
		return "os." + fn.Name() + " call"
	}
	return ""
}

// isUnbufferedChan reports whether the channel expression provably
// originates from a make(chan T) with no capacity argument.
func isUnbufferedChan(pass *Pass, origins *Origins, ch ast.Expr) bool {
	if unbufferedMake(pass, ch) {
		return true
	}
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	for _, src := range origins.sources[obj] {
		if unbufferedMake(pass, src) {
			return true
		}
	}
	return false
}

func unbufferedMake(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || calleeBuiltin(pass.Info, call) != "make" || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
