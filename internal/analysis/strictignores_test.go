package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadStaleIgnoreUnits loads the staleignore fixture package: one live
// fsops suppression and one whose diagnostic no longer fires.
func loadStaleIgnoreUnits(t *testing.T) []*Unit {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadDir(filepath.Join("testdata", "src", "staleignore"))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("staleignore corpus loaded no units")
	}
	return units
}

// TestStrictIgnores pins the -strict-ignores contract: with the audit on,
// a directive whose diagnostic no longer fires is itself a finding; with
// it off, suppressions stay silent either way.
func TestStrictIgnores(t *testing.T) {
	units := loadStaleIgnoreUnits(t)

	var lax, strict []Diagnostic
	for _, u := range units {
		lax = append(lax, RunUnitCfg(u, All(), RunConfig{})...)
		strict = append(strict, RunUnitCfg(u, All(), RunConfig{StrictIgnores: true})...)
	}

	if len(lax) != 0 {
		for _, d := range lax {
			t.Errorf("without StrictIgnores, unexpected diagnostic %s:%d: %s: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}

	if len(strict) != 1 {
		for _, d := range strict {
			t.Logf("got: %s:%d: %s: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
		t.Fatalf("with StrictIgnores, got %d diagnostics, want exactly 1 stale report", len(strict))
	}
	d := strict[0]
	if d.Analyzer != "qlint" {
		t.Errorf("stale report attributed to %q, want qlint", d.Analyzer)
	}
	if d.Pos.Line != 27 {
		t.Errorf("stale report at line %d, want 27 (the dead directive's own line)", d.Pos.Line)
	}
	if want := "stale qlint:ignore: no fsops diagnostic fires here anymore"; !strings.Contains(d.Message, want) {
		t.Errorf("stale report message %q does not contain %q", d.Message, want)
	}
}

// TestStrictIgnoresOnlySubset: a directive for an analyzer that did not
// run is never judged stale — `-only collectiveorder -strict-ignores`
// must not condemn fsops suppressions it has no evidence about.
func TestStrictIgnoresOnlySubset(t *testing.T) {
	units := loadStaleIgnoreUnits(t)
	subset, err := Select([]string{"collectiveorder"})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		for _, d := range RunUnitCfg(u, subset, RunConfig{StrictIgnores: true}) {
			t.Errorf("unexpected diagnostic under -only collectiveorder: %s:%d: %s: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
}
