package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc keeps the byte-moving inner loops allocation-free. Functions
// marked //qusim:hot in their doc comment (the gate kernels, permutation
// gathers, and f32 compression loops that touch every amplitude) promise
// steady-state zero allocations — at 2^45 amplitudes even one small
// allocation per loop iteration turns into garbage-collector pressure
// that dwarfs the compute. Inside any loop of a marked function the
// analyzer flags the constructs that allocate or box:
//
//   - make / new / append and composite literals;
//   - function literals (closure allocation per iteration);
//   - conversions to string or slice types (copying conversions);
//   - passing or assigning a concrete value where an interface is
//     expected (boxing; fmt-style calls are the classic offender).
//
// Calls out of a hot loop are followed one level deep: a call to a
// function declared in the same unit whose body allocates (make / new /
// append, composite or function literal) is reported at the call site —
// the allocation runs once per iteration no matter whose body it sits
// in, and hiding it behind a helper used to hide it from the analyzer.
//
// panic calls are exempt: a panicking iteration is not steady state.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "loops in //qusim:hot functions must not allocate or box: no make/new/append, composite or " +
		"function literals, copying conversions, or concrete-to-interface boxing",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	// Same-unit declaration index for the single-level inlining step.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHasMarker(fd.Doc, "//qusim:hot") {
				continue
			}
			checkHotFunc(pass, fd, decls)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) {
	// Collect the loop-body regions; everything inside one is hot. Unlike
	// the other analyzers this descends into function literals: the hot
	// kernels hand their sweep loops to the worker pool as par.For closures,
	// and those loops are exactly the ones the marker promises are clean.
	var loops []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(p ast.Node) bool {
		for _, l := range loops {
			if l.contains(p.Pos()) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if inLoop(x) {
				pass.Reportf(x.Pos(), "composite literal allocates inside a //qusim:hot loop (%s): hoist it out of the loop", fd.Name.Name)
			}
		case *ast.FuncLit:
			// Flag only literals born inside a loop (one closure per
			// iteration); a literal outside any loop — the par.For worker
			// itself — is a one-time cost, but its body stays hot.
			if inLoop(x) {
				pass.Reportf(x.Pos(), "function literal allocates a closure inside a //qusim:hot loop (%s): hoist it out of the loop", fd.Name.Name)
			}
		case *ast.CallExpr:
			if calleeBuiltin(pass.Info, x) == "panic" {
				return false // a panicking iteration is not steady state; its message may allocate
			}
			if !inLoop(x) {
				return true
			}
			checkHotCall(pass, fd.Name.Name, x, decls)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fname string, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) {
	switch calleeBuiltin(pass.Info, call) {
	case "make", "new", "append":
		pass.Reportf(call.Pos(), "%s inside a //qusim:hot loop (%s) allocates per iteration: hoist the buffer out of the loop",
			calleeBuiltin(pass.Info, call), fname)
		return
	case "panic", "len", "cap", "copy", "clear", "min", "max", "real", "imag", "complex", "delete", "print", "println":
		return
	}
	if isConversion(pass.Info, call) {
		tv := pass.Info.Types[call.Fun]
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			pass.Reportf(call.Pos(), "conversion to %s copies inside a //qusim:hot loop (%s)", tv.Type.String(), fname)
		case *types.Basic:
			if tv.Type.Underlying().(*types.Basic).Kind() == types.String {
				if argT, ok := pass.Info.Types[call.Args[0]]; ok {
					if _, isBasic := argT.Type.Underlying().(*types.Basic); !isBasic {
						pass.Reportf(call.Pos(), "conversion to string copies inside a //qusim:hot loop (%s)", fname)
					}
				}
			}
		case *types.Interface:
			pass.Reportf(call.Pos(), "conversion to interface %s boxes inside a //qusim:hot loop (%s)", tv.Type.String(), fname)
		}
		return
	}
	// Boxing through a call: concrete argument, interface parameter.
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				paramT = sl.Elem()
			}
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil {
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pass.Info.Types[arg]
		if !ok || argTV.Type == nil {
			continue
		}
		if _, argIface := argTV.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		if argTV.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(),
			"passing %s to interface parameter of %s boxes inside a //qusim:hot loop (%s)",
			argTV.Type.String(), fn.Name(), fname)
	}

	// Single-level inlining: a same-unit callee that allocates anywhere in
	// its body allocates once per iteration of this loop.
	if callee, ok := decls[types.Object(fn)]; ok {
		if node, what := firstCalleeAlloc(pass, callee.Body); node != nil {
			pass.Reportf(call.Pos(),
				"call to %s allocates per iteration inside a //qusim:hot loop (%s): %s at line %d — hoist the allocation out of the per-iteration path",
				fn.Name(), fname, what, pass.Fset.Position(node.Pos()).Line)
		}
	}
}

// firstCalleeAlloc finds the source-first allocating construct in a
// callee body: make/new/append, a composite literal, or a function
// literal. Conversions and boxing are left to the callee's own marker —
// one inlining level keeps the signal-to-noise of the direct checks.
// panic subtrees are exempt, as in the direct case.
func firstCalleeAlloc(pass *Pass, body *ast.BlockStmt) (ast.Node, string) {
	var node ast.Node
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.CompositeLit:
			node, what = x, "composite literal"
		case *ast.FuncLit:
			node, what = x, "function literal"
		case *ast.CallExpr:
			switch b := calleeBuiltin(pass.Info, x); b {
			case "panic":
				return false
			case "make", "new", "append":
				node, what = x, b
			}
		}
		return node == nil
	})
	return node, what
}
