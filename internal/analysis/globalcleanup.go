package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalCleanup keeps tests hermetic with respect to process-global
// simulator state. The worker pool size, the process-global telemetry
// hooks, and the kernel tuner selections are plain globals for hot-path
// cheapness, which means a test that sets one and forgets to restore it
// silently reconfigures every later test in the binary (the exact class
// of leak PR 1's SetWorkers audit and PR 4's telemetry tests fixed by
// hand). The analyzer flags any call to one of those setters from a
// _test.go function that does not also register a t.Cleanup/b.Cleanup (or
// defer a restoring call to the same setter) in the same function.
var GlobalCleanup = &Analyzer{
	Name: "globalcleanup",
	Doc: "tests mutating process globals (par.SetWorkers, par.SetTelemetry, ckpt.SetTelemetry, " +
		"ckpt.SetFS, oocvec.SetFS, kernels.SetSelected, kernels.SetSplitBlock) must restore them via t.Cleanup or defer",
	Run: runGlobalCleanup,
}

// globalSetters maps the guarded process-global setters, keyed by package
// path then function name.
var globalSetters = map[string]map[string]bool{
	parPath:     {"SetWorkers": true, "SetTelemetry": true},
	ckptPath:    {"SetTelemetry": true, "SetFS": true},
	oocvecPath:  {"SetFS": true},
	kernelsPath: {"SetSelected": true, "SetSplitBlock": true},
}

func isGlobalSetter(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || recvNamed(fn) != "" {
		return false
	}
	return globalSetters[fn.Pkg().Path()][fn.Name()]
}

func runGlobalCleanup(pass *Pass) {
	for _, f := range pass.Files {
		if !pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSetterCleanup(pass, fd)
		}
	}
}

// checkSetterCleanup inspects one test-file function: every global-setter
// call must be matched by a Cleanup registration or a deferred restoring
// call to the same setter somewhere in the same declaration (closures
// included — the canonical pattern is t.Cleanup(func() { SetX(old) })).
func checkSetterCleanup(pass *Pass, fd *ast.FuncDecl) {
	type setterCall struct {
		call *ast.CallExpr
		fn   *types.Func
	}
	var calls []setterCall
	restored := map[*types.Func]bool{}
	hasCleanup := false

	// Unlike the per-body analyzers, walk the whole declaration including
	// nested closures: the restoring call lives inside the Cleanup closure.
	var walk func(n ast.Node, deferred, cleanup bool)
	walk = func(n ast.Node, deferred, cleanup bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.DeferStmt:
				walk(x.Call, true, cleanup)
				return false
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, x)
				if isTestingCleanup(pass.Info, x) {
					hasCleanup = true
					for _, arg := range x.Args {
						walk(arg, deferred, true)
					}
					return false
				}
				if isGlobalSetter(fn) {
					if deferred || cleanup {
						restored[fn] = true
					} else {
						calls = append(calls, setterCall{x, fn})
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false, false)

	for _, c := range calls {
		if restored[c.fn] {
			continue
		}
		if hasCleanup {
			// A Cleanup exists but never calls this setter back: still a
			// leak — the global stays mutated for the rest of the binary.
			pass.Reportf(c.call.Pos(),
				"%s.%s mutates process-global state but no t.Cleanup/defer in %s restores it: later tests in the binary inherit the mutated value",
				c.fn.Pkg().Name(), c.fn.Name(), fd.Name.Name)
			continue
		}
		pass.Reportf(c.call.Pos(),
			"%s.%s mutates process-global state without a t.Cleanup/defer restore in %s: register `old := %s.%s(...); t.Cleanup(func() { %s.%s(old) })`",
			c.fn.Pkg().Name(), c.fn.Name(), fd.Name.Name,
			c.fn.Pkg().Name(), c.fn.Name(), c.fn.Pkg().Name(), c.fn.Name())
	}
}

// isTestingCleanup reports whether call is t.Cleanup/b.Cleanup/f.Cleanup
// on a *testing.T/B/F (or testing.TB) receiver.
func isTestingCleanup(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Cleanup" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "testing"
}
