package analysis

// GoroutineLife enforces that every goroutine launched in non-test
// internal packages has a provable join or cancel path. The simulator's
// ranks run for hours: a goroutine that nothing ever joins outlives its
// owner, keeps buffers pinned, and — when it touches MPI — can deadlock a
// collective long after the spawning call returned. The proof obligations
// accepted here are the repo's own idioms: the spawned body signals
// completion through a sync.WaitGroup (Done/Wait), closes a channel,
// sends or receives on one, selects, or drains a channel with
// `for range ch`. A `go` statement whose body shows none of these — or
// whose callee cannot be resolved inside the unit at all — is flagged.
//
// The check is deliberately an over-approximation of safety: any channel
// or WaitGroup interaction in the body (nested closures included) counts
// as a join path. That keeps false positives near zero at the cost of
// missing goroutines whose signal is dead code — the corpus pins both
// directions.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "every `go` statement in non-test internal packages needs a provable " +
		"join or cancel path (WaitGroup Done/Wait, channel close/send/receive, " +
		"select, or `for range ch`) so goroutines cannot leak past their owner",
	Run: runGoroutineLife,
}

func runGoroutineLife(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") ||
		strings.HasSuffix(pass.Pkg.Path(), "_test") {
		return
	}
	// Index the unit's own function declarations so `go worker(...)`
	// resolves to a body we can inspect.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := resolveSpawnedBody(pass, decls, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(),
					"goroutine body cannot be resolved in this package; its lifecycle is unprovable — spawn a local func that signals completion")
				return true
			}
			if !hasJoinPath(pass, body) {
				pass.Reportf(gs.Pos(),
					"goroutine has no provable join or cancel path (no WaitGroup Done/Wait, channel close/send/receive, select, or `for range ch`) — it can leak past its owner")
			}
			return true
		})
	}
}

// resolveSpawnedBody returns the function body a `go` call runs: the
// literal itself, or the same-unit declaration of a named callee. Nil
// when the callee lives outside the unit (method value, imported func,
// func-typed variable).
func resolveSpawnedBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd, ok := decls[pass.Info.Uses[fun]]; ok {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return fd.Body
		}
	}
	return nil
}

// hasJoinPath reports whether the body contains any accepted completion
// signal. Nested function literals are included: a deferred closure
// calling wg.Done is the most common shape.
func hasJoinPath(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if calleeBuiltin(pass.Info, x) == "close" {
				found = true
				break
			}
			fn := calleeFunc(pass.Info, x)
			if methodIs(fn, "sync", "WaitGroup", "Done") ||
				methodIs(fn, "sync", "WaitGroup", "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}
