package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked body of code an analyzer runs over: a package's
// library sources merged with its in-package test files, or an external
// _test package. Merging the test files into the library unit mirrors how
// `go test` compiles the package, so analyzers that care about tests
// (globalcleanup) and analyzers that care about library code see one
// consistent view without analyzing the same file twice.
type Unit struct {
	Fset       *token.FileSet
	Dir        string
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library: intra-module imports are resolved by walking the
// module tree, and standard-library imports go through go/importer's
// source importer (shared across all units, so the stdlib is type-checked
// once per process). There is deliberately no support for third-party
// dependencies — the module has none, and growing some should be a
// conscious decision, not a linter side effect.
type Loader struct {
	Fset   *token.FileSet
	root   string // module root (directory containing go.mod)
	module string // module path from go.mod

	stdlib types.ImporterFrom
	cache  map[string]*types.Package // import path → library-only package
	busy   map[string]bool           // cycle guard for cache fills
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		stdlib: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  map[string]*types.Package{},
		busy:   map[string]bool{},
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("qlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("qlint: no module directive in %s", gomod)
}

// LoadPackages walks the module tree below root and loads every package
// directory (skipping testdata, vendor, hidden and tool-output dirs),
// returning one unit per package plus one per external test package.
func (l *Loader) LoadPackages() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "bin") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// parsedDir is a directory's files split the way `go test` builds them.
type parsedDir struct {
	lib   []*ast.File // non-test files
	tests []*ast.File // in-package _test.go files
	xtest []*ast.File // package foo_test files
}

func (l *Loader) parseDir(dir string) (*parsedDir, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pd := &parsedDir{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(name, "_test.go"):
			pd.xtest = append(pd.xtest, f)
		case strings.HasSuffix(name, "_test.go"):
			pd.tests = append(pd.tests, f)
		default:
			pd.lib = append(pd.lib, f)
		}
	}
	return pd, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("qlint: %s is outside module %s", dir, l.module)
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads one package directory into analyzer units: the library
// package merged with its in-package tests, plus (when present) the
// external test package.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pd, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	if len(pd.lib)+len(pd.tests) > 0 {
		u, err := l.check(path, dir, append(append([]*ast.File{}, pd.lib...), pd.tests...), nil)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
		if len(pd.xtest) > 0 {
			// The external test package sees the test build of the package
			// under test (export_test.go shims included), so resolve its
			// self-import to the merged unit just built.
			over := map[string]*types.Package{path: u.Pkg}
			xu, err := l.check(path+"_test", dir, pd.xtest, over)
			if err != nil {
				return nil, err
			}
			units = append(units, xu)
		}
	} else if len(pd.xtest) > 0 {
		xu, err := l.check(path+"_test", dir, pd.xtest, nil)
		if err != nil {
			return nil, err
		}
		units = append(units, xu)
	}
	return units, nil
}

// check type-checks files as one package. overrides lets an external test
// unit import the merged test build of its subject package.
func (l *Loader) check(path, dir string, files []*ast.File, overrides map[string]*types.Package) (*Unit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: &unitImporter{l: l, overrides: overrides}}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("qlint: type-checking %s: %w", path, err)
	}
	return &Unit{Fset: l.Fset, Dir: dir, ImportPath: path, Files: files, Pkg: pkg, Info: info}, nil
}

// importLib returns the library-only package for an intra-module import
// path, type-checking and caching it on first use.
func (l *Loader) importLib(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("qlint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(path, l.module)
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pd, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pd.lib) == 0 {
		return nil, fmt.Errorf("qlint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: &unitImporter{l: l}}
	pkg, err := conf.Check(path, l.Fset, pd.lib, nil)
	if err != nil {
		return nil, fmt.Errorf("qlint: type-checking dependency %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// unitImporter resolves one unit's imports: overrides first (external test
// self-import), then intra-module packages, then the shared stdlib source
// importer.
type unitImporter struct {
	l         *Loader
	overrides map[string]*types.Package
}

func (ui *unitImporter) Import(path string) (*types.Package, error) {
	return ui.ImportFrom(path, "", 0)
}

func (ui *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := ui.overrides[path]; ok {
		return p, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := ui.l
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		return l.importLib(path)
	}
	if strings.Contains(strings.SplitN(path, "/", 2)[0], ".") {
		return nil, fmt.Errorf("qlint: external dependency %q is not supported (the module is stdlib-only)", path)
	}
	return ui.stdlibImport(path)
}

func (ui *unitImporter) stdlibImport(path string) (*types.Package, error) {
	return ui.l.stdlib.ImportFrom(path, ui.l.root, 0)
}
