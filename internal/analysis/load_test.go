package analysis

import (
	"path/filepath"
	"testing"
)

// repoRoot resolves the module root from this package's directory.
func repoRoot(t testing.TB) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoaderTypechecksRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	units, err := l.LoadPackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 20 {
		t.Fatalf("loaded only %d units from the module, expected the full package tree", len(units))
	}
	seen := map[string]bool{}
	for _, u := range units {
		seen[u.ImportPath] = true
		if u.Pkg == nil || u.Info == nil || len(u.Files) == 0 {
			t.Errorf("unit %s incompletely loaded", u.ImportPath)
		}
	}
	for _, want := range []string{"qusim", "qusim/internal/mpi", "qusim/internal/ckpt", "qusim/internal/dist"} {
		if !seen[want] {
			t.Errorf("missing unit %s (have %d units)", want, len(units))
		}
	}
}

func TestLoaderExternalTestPackage(t *testing.T) {
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	units, err := l.LoadDir(filepath.Join(repoRoot(t), "internal", "gate"))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units for internal/gate")
	}
}
