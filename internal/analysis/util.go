package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Import paths of the packages whose contracts the analyzers encode.
const (
	modulePathPrefix = "qusim"

	mpiPath       = "qusim/internal/mpi"
	ckptPath      = "qusim/internal/ckpt"
	telemetryPath = "qusim/internal/telemetry"
	parPath       = "qusim/internal/par"
	kernelsPath   = "qusim/internal/kernels"
	fsioPath      = "qusim/internal/fsio"
	oocvecPath    = "qusim/internal/oocvec"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and indirect calls through function
// values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeBuiltin returns the name of the builtin a call invokes ("" when it
// is not a builtin call).
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// fnIs reports whether fn is the package-level function pkgPath.name.
func fnIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && recvNamed(fn) == ""
}

// methodIs reports whether fn is a method named name on the (possibly
// pointer-wrapped) named type pkgPath.recv.
func methodIs(fn *types.Func, pkgPath, recv, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && recvNamed(fn) == recv
}

// recvNamed returns the bare receiver type name of a method ("" for plain
// functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedFrom unwraps pointers and reports the named type's package path and
// name, if t (or its pointee) is a named type from a package.
func namedFrom(t types.Type) (pkgPath, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil {
		return "", "", false
	}
	return n.Obj().Pkg().Path(), n.Obj().Name(), true
}

// docHasMarker reports whether a declaration's doc comment contains the
// given standalone marker line (e.g. //qusim:hot, //qusim:commit-helper).
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// unitImports reports whether the unit's package imports (directly) the
// given path, or is that package itself.
func unitImports(pkg *types.Package, path string) bool {
	if pkg.Path() == path || pkg.Path() == path+"_test" {
		return true
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file a node sits in is a _test.go file.
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// eachFuncBody invokes fn for every function declaration and function
// literal in the file, with the declaration's doc comment (nil for
// literals) — the granularity the per-function analyzers work at.
// Function literals nested inside another body are visited on their own;
// walkBody (below) does not descend into them.
func eachFuncBody(f *ast.File, fn func(doc *ast.CommentGroup, name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Doc, d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn(nil, "func literal", d.Body)
		}
		return true
	})
}

// walkBody walks a function body without descending into nested function
// literals (they get their own eachFuncBody visit).
func walkBody(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			visit(n)
			return false
		}
		return visit(n)
	})
}
