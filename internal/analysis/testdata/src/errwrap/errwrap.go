// Package errwrap is the analysistest corpus for the errwrap analyzer:
// wrap-chain-breaking %v formatting of classified errors, fresh errors
// minted inside `if err != nil` guards, and the negative space — stdlib
// errors, %w usage, and reasoned suppressions.
package errwrap

import (
	"errors"
	"fmt"
	"strconv"

	"qusim/internal/fsio"
)

// readBlock is the corpus's stand-in for a seam call: its result carries
// fsio classification that downstream wrapping must preserve.
func readBlock(name string) ([]byte, error) {
	return fsio.OS{}.ReadFile(name)
}

// flattensSeamError loses the classification the scheduler dispatches on.
func flattensSeamError(name string) error {
	data, err := readBlock(name)
	if err != nil {
		return fmt.Errorf("reading %s: %v", name, err) // want `errwrap: error formatted with %v loses its wrap chain`
	}
	_ = data
	return nil
}

// flattensThroughLocal: the origin chase must follow the intermediate
// assignment back to the seam call.
func flattensThroughLocal(name string) error {
	_, readErr := readBlock(name)
	cause := readErr
	if cause != nil {
		return fmt.Errorf("block load failed: %s", cause) // want `errwrap: error formatted with %s loses its wrap chain`
	}
	return nil
}

// wrapsProperly is the fixed form: %w keeps IsNoSpace/IsTransient alive.
func wrapsProperly(name string) error {
	if _, err := readBlock(name); err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	return nil
}

// stdlibErrorIsFine: a strconv error never carried classification, so
// flattening it is legal outside the seam packages.
func stdlibErrorIsFine(s string) error {
	if _, err := strconv.Atoi(s); err != nil {
		return fmt.Errorf("parsing %q: %v", s, err)
	}
	return nil
}

// mintsFreshError discards the classified chain entirely.
func mintsFreshError(name string) error {
	_, err := readBlock(name)
	if err != nil {
		return errors.New("block unreadable") // want `errwrap: returns a fresh error inside .if err != nil.`
	}
	return nil
}

// mintsFreshErrorf: a fmt.Errorf that never mentions the guarded error is
// the same discard in different clothes.
func mintsFreshErrorf(name string) error {
	_, err := readBlock(name)
	if err != nil {
		return fmt.Errorf("cannot load %s", name) // want `errwrap: returns a fresh error inside .if err != nil.`
	}
	return nil
}

// rewrapsGuardedError mentions err in the guard return, so it is not a
// discard — pattern 1 catches the verb choice separately.
func rewrapsGuardedError(name string) error {
	_, err := readBlock(name)
	if err != nil {
		return fmt.Errorf("loading %s: %w", name, err)
	}
	return nil
}

// sentinelReturnIsFine: returning a package sentinel variable inside a
// guard is a deliberate translation, not an accidental discard.
var errCorrupt = errors.New("errwrap corpus: corrupt block")

func sentinelReturnIsFine(name string) error {
	if _, err := readBlock(name); err != nil {
		return errCorrupt
	}
	return nil
}

// suppressedFlatten documents the one sanctioned flatten: a log-only
// summary string that never reaches a classification decision.
func suppressedFlatten(name string) string {
	_, err := readBlock(name)
	if err != nil {
		//qlint:ignore errwrap summary string is display-only and never classified
		return fmt.Errorf("unreadable: %v", err).Error()
	}
	return "ok"
}
