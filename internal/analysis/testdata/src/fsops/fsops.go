// Package fsops is the analysistest corpus for the fsops analyzer. It
// imports internal/fsio, which is what puts the package on the seam and
// arms the check: every data-path file operation must go through an
// fsio.FS so chaos fault injection and seam accounting see it.
package fsops

import (
	"os"

	"qusim/internal/fsio"
)

// seam is the fixture's installed file-ops implementation; holding (and
// using) one is the sanctioned way to touch the filesystem here.
var seam fsio.FS = fsio.OS{}

// readThroughSeam is the correct idiom: the operation flows through the
// installed FS, so an injected fault schedule can see and degrade it.
func readThroughSeam(path string) ([]byte, error) {
	return seam.ReadFile(path)
}

// readBypassingSeam is the bug the analyzer exists for: the read is
// invisible to chaos injection, so fault coverage silently shrinks.
func readBypassingSeam(path string) ([]byte, error) {
	return os.ReadFile(path) // want `fsops: os\.ReadFile bypasses the fsio seam`
}

// removeBypassingSeam also skips seam-level accounting (ckpt counts prune
// failures on its FS.Remove, for example).
func removeBypassingSeam(path string) error {
	return os.Remove(path) // want `fsops: os\.Remove bypasses the fsio seam`
}

// stageBypassingSeam hides the whole write family from injection in one
// call, including the rename ENOSPC/torn-write failpoints.
func stageBypassingSeam(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "shard-*.tmp") // want `fsops: os\.CreateTemp bypasses the fsio seam`
}

// renameInClosure checks that closures are walked too: deferred cleanup
// paths are exactly where bypasses like to hide.
func renameInClosure(tmp, final string) func() error {
	return func() error {
		return os.Rename(tmp, final) // want `fsops: os\.Rename bypasses the fsio seam`
	}
}

// mkdirStaysAllowed: directory bookkeeping is not a data-path operation —
// the injector passes MkdirAll through untouched, so calling os directly
// loses nothing.
func mkdirStaysAllowed(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// exportReport exercises the function-scoped suppression path for output
// that is genuinely outside the fault model.
//
//qlint:ignore fsops fixture: a human-readable report for the operator, not data any run reads back
func exportReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}
