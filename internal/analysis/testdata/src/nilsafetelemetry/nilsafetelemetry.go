// Package nilsafetelemetry is the analysistest corpus for the
// nilsafetelemetry analyzer: the typed-nil Disabled contract must only be
// touched through nil-safe method calls outside internal/telemetry.
package nilsafetelemetry

import "qusim/internal/telemetry"

// derefHandle copies the telemetry struct through a dereference: panics
// outright when the handle is telemetry.Disabled.
func derefHandle(tel *telemetry.Telemetry) telemetry.Telemetry {
	return *tel // want `nilsafetelemetry: dereferencing telemetry handle`
}

// valueConstruct builds a handle by value, splitting the typed-nil
// contract (the zero value is not a working sink).
func valueConstruct() telemetry.Telemetry {
	return telemetry.Telemetry{} // want `nilsafetelemetry: constructing qusim/internal/telemetry\.Telemetry by value`
}

// compareDisabled tests enablement by identity instead of Enabled().
func compareDisabled(tel *telemetry.Telemetry) bool {
	return tel == telemetry.Disabled // want `nilsafetelemetry: comparing against telemetry\.Disabled`
}

// methodCalls is the sanctioned usage: every access is a nil-safe method,
// nothing to flag even when tel is Disabled.
func methodCalls(tel *telemetry.Telemetry) bool {
	sc := tel.Scope(0, 0, "rank 0", "engine")
	sc.Instant("stage", "begin")
	tel.Registry().Counter("fixture.calls").Add(1)
	return tel.Enabled()
}

// suppressedCompare exercises the line-scoped suppression path.
func suppressedCompare(tel *telemetry.Telemetry) bool {
	//qlint:ignore nilsafetelemetry fixture: asserting the Disabled identity is the point of this helper
	return tel != telemetry.Disabled
}
