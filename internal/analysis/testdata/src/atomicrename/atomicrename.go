// Package atomicrename is the analysistest corpus for the atomicrename
// analyzer. It imports internal/ckpt, which is what puts the package in
// scope for the durability rules.
package atomicrename

import (
	"os"

	"qusim/internal/ckpt"
)

// newestPolicy ties the fixture to the checkpoint layer the analyzer
// guards; the import is what arms the check.
func newestPolicy(dir string) *ckpt.Policy {
	return &ckpt.Policy{Dir: dir, EveryStages: 1}
}

// writeManifestInPlace is the crash-consistency bug the analyzer exists
// for: bytes land under the committed name without the temp+rename step.
func writeManifestInPlace(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `atomicrename: os\.WriteFile in checkpoint-adjacent code`
}

// createFinal opens the final file directly instead of staging a temp.
func createFinal(path string) (*os.File, error) {
	return os.Create(path) // want `atomicrename: os\.Create in checkpoint-adjacent code`
}

// renameOutsideHelper renames without the commit helper's fsync ordering.
func renameOutsideHelper(tmp, final string) error {
	return os.Rename(tmp, final) // want `atomicrename: os\.Rename in checkpoint-adjacent code`
}

// stageTemp is the sanctioned first step of the protocol: os.CreateTemp is
// never flagged.
func stageTemp(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "shard-*.tmp")
}

// commit is this fixture's designated commit point; the marker sanctions
// the rename inside it.
//
//qusim:commit-helper
func commit(tmp, final string) error {
	return os.Rename(tmp, final)
}

// exportReport exercises the function-scoped suppression path for output
// that is genuinely not durability data.
//
//qlint:ignore atomicrename fixture: a human-readable report, not checkpoint durability data
func exportReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}
