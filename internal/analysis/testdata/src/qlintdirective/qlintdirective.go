// Package qlintdirective is the corpus for the directive parser itself:
// malformed //qlint:ignore comments must surface as "qlint" diagnostics
// instead of silently suppressing nothing. The expectations live in
// TestDirectiveDiagnostics (the diagnostics land on the comment lines, so
// end-of-line want comments cannot express them).
package qlintdirective

import "qusim/internal/par"

// missingEverything omits both the analyzer name and the reason.
func missingEverything() {
	//qlint:ignore
	par.SetWorkers(1)
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer() {
	//qlint:ignore gofmtcheck some reason
	par.SetWorkers(1)
}

// missingReason names a real analyzer but gives no justification; the
// suppression must not take effect.
func missingReason() {
	//qlint:ignore globalcleanup
	par.SetWorkers(1)
}

// wellFormed is the control: a correct directive parses without noise.
func wellFormed() {
	//qlint:ignore globalcleanup fixture: not a test file, nothing to suppress anyway
	par.SetWorkers(1)
}

// multiLineReason: the reason must live on the directive's own line — a
// continuation comment line underneath does not attach, so this is the
// missing-reason diagnostic, not a suppression with a two-line reason.
func multiLineReason() {
	//qlint:ignore globalcleanup
	// this next line is a separate comment, not the directive's reason
	par.SetWorkers(1)
}

// blockComment: only //-style directives are recognized; a block comment
// spelling the same text is inert — neither a suppression nor a finding.
func blockComment() {
	/* qlint:ignore globalcleanup block comments are not directives */
	par.SetWorkers(1)
}
