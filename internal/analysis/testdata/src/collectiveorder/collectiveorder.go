// Package collectiveorder is the analysistest corpus for the
// collectiveorder analyzer: rank-conditioned collectives, conditional
// success returns inside World.Run closures, and the suppression paths.
package collectiveorder

import (
	"errors"

	"qusim/internal/mpi"
)

// rankConditionedBarrier is the PR 2 deadlock class in miniature: rank 0
// enters the barrier, everyone else never does.
func rankConditionedBarrier(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want `collectiveorder: mpi\.Barrier under rank-dependent condition \(line 15\)`
	}
}

// taintedCondition guards a collective with a value derived from the rank
// rather than the rank itself; the taint propagation must still see it.
func taintedCondition(c *mpi.Comm) float64 {
	r := c.Rank()
	group := r >> 1
	if group == 0 {
		return c.AllreduceSum(1) // want `collectiveorder: mpi\.AllreduceSum under rank-dependent condition \(line 25\)`
	}
	return 0
}

// rankSwitch covers the switch-statement region: each case is reachable by
// a subset of ranks only.
func rankSwitch(c *mpi.Comm) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want `collectiveorder: mpi\.Barrier under rank-dependent condition \(line 34\)`
	}
}

// earlySuccessReturn deserts the barrier on the empty-rank path: a nil
// return does not poison the world, so the other ranks block forever.
func earlySuccessReturn(w *mpi.World, empty bool) error {
	return w.Run(func(c *mpi.Comm) error {
		if empty {
			return nil // want `collectiveorder: conditional .return nil. inside World\.Run closure skips the mpi\.Barrier at line 47`
		}
		c.Barrier()
		return nil
	})
}

// earlyErrorReturn is the legitimate counterpart: an error return poisons
// the world and unblocks every other rank, so it is not flagged.
func earlyErrorReturn(w *mpi.World, bad bool) error {
	return w.Run(func(c *mpi.Comm) error {
		if bad {
			return errors.New("corrupt local state")
		}
		c.Barrier()
		return nil
	})
}

// uniformSum is rank-uniform: every rank reaches both collectives in the
// same order. Nothing to flag.
func uniformSum(c *mpi.Comm, local float64) float64 {
	c.Barrier()
	return c.AllreduceSum(local)
}

// suppressedLine exercises the line-scoped suppression path.
func suppressedLine(c *mpi.Comm) {
	if c.Rank() == 0 {
		//qlint:ignore collectiveorder fixture: single-rank world, the branch covers every rank
		c.Barrier()
	}
}

// suppressedFunc exercises the function-scoped suppression path: the
// directive in this doc comment covers both PairExchange calls.
//
//qlint:ignore collectiveorder both arms exchange with the same partner, so the collective sequence is rank-uniform
func suppressedFunc(c *mpi.Comm, buf, tmp []complex128) {
	partner := c.Rank() ^ 1
	if c.Rank()&1 == 0 {
		c.PairExchange(partner, buf, tmp)
	} else {
		c.PairExchange(partner, tmp, buf)
	}
}

// localOnlyArm pins the CFG upgrade: the inner `return nil` sits in a
// nested branch whose every path returns before the barrier, so the rank
// that takes it deserts nothing the localOnly arm would have executed.
// The v1 positional check ("a collective appears later in the source")
// flagged it; the natural-successor reachability query must not. The
// OUTER return is the real desertion point and stays flagged.
func localOnlyArm(w *mpi.World, localOnly, cached bool) error {
	return w.Run(func(c *mpi.Comm) error {
		if localOnly {
			if cached {
				return nil
			}
			processLocal()
			return nil // want `collectiveorder: conditional .return nil. inside World\.Run closure skips the mpi\.Barrier at line \d+`
		}
		c.Barrier()
		return nil
	})
}

func processLocal() {}

// loopDesertion: the success return deserts the next iteration's
// collective through the loop back edge, which only a CFG can see.
func loopDesertion(w *mpi.World, stages int, done func(int) bool) error {
	return w.Run(func(c *mpi.Comm) error {
		for s := 0; s < stages; s++ {
			if done(s) {
				return nil // want `collectiveorder: conditional .return nil. inside World\.Run closure skips the mpi\.Barrier at line \d+`
			}
			c.Barrier()
		}
		return nil
	})
}
