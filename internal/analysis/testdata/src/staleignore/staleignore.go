// Package staleignore is the fixture for the -strict-ignores audit: one
// directive that still suppresses a live diagnostic, and one whose
// diagnostic stopped firing — the stale one the audit must surface.
// Expectations live in TestStrictIgnores (stale reports land on the
// directive lines themselves).
package staleignore

import (
	"os"

	"qusim/internal/fsio"
)

// fs puts this package on the fsio seam so the fsops analyzer applies.
var fs fsio.FS = fsio.OS{}

// usedDirective: the suppression below still earns its keep — os.ReadFile
// in a seam package is exactly what fsops flags.
func usedDirective(name string) ([]byte, error) {
	//qlint:ignore fsops fixture: exercising a live suppression
	return os.ReadFile(name)
}

// staleDirective: the os call this directive once covered is gone; the
// suppression is dead weight and -strict-ignores must say so.
func staleDirective(name string) (fsio.FS, string) {
	//qlint:ignore fsops fixture: the call this once covered is gone
	return fs, name
}
