// Package lockscope is the analysistest corpus for the lockscope
// analyzer: blocking operations under a held mutex, the must-analysis
// negative space (branch-dependent locks, copy-then-block), and a
// reasoned suppression.
package lockscope

import (
	"os"
	"sync"

	"qusim/internal/fsio"
	"qusim/internal/mpi"
)

// barrierUnderLock is the canonical world-deadlock: every other rank's
// path to the same barrier may need mu.
func barrierUnderLock(c *mpi.Comm, mu *sync.Mutex) {
	mu.Lock()
	c.Barrier() // want `lockscope: mpi collective Barrier while holding mu`
	mu.Unlock()
}

// copyThenBlock is the repo's idiom: snapshot under the lock, block
// outside it.
func copyThenBlock(c *mpi.Comm, mu *sync.Mutex, shared []float64) float64 {
	mu.Lock()
	local := make([]float64, len(shared))
	copy(local, shared)
	mu.Unlock()
	return c.AllreduceSum(local[0])
}

// maybeLocked: the lock is held on one path only, so the must-analysis
// cannot claim it at the collective.
func maybeLocked(c *mpi.Comm, mu *sync.Mutex, cond bool) {
	if cond {
		mu.Lock()
		defer mu.Unlock()
	}
	c.Barrier()
}

// lockedOnEveryPath: both arms acquire, so the intersection at the join
// still holds the mutex.
func lockedOnEveryPath(c *mpi.Comm, mu *sync.Mutex, cond bool) {
	if cond {
		mu.Lock()
	} else {
		mu.Lock()
	}
	c.Barrier() // want `lockscope: mpi collective Barrier while holding mu`
	mu.Unlock()
}

// deferUnlock releases at return, so the fsio call still runs under the
// lock — a chaos-injected stall becomes a process-wide stall.
func deferUnlock(mu *sync.Mutex, name string) ([]byte, error) {
	mu.Lock()
	defer mu.Unlock()
	return fsio.OS{}.ReadFile(name) // want `lockscope: fsio.ReadFile call while holding mu`
}

// osOpUnderLock: the banned os entry points block on the disk too.
func osOpUnderLock(mu *sync.Mutex, name string) ([]byte, error) {
	mu.Lock()
	defer mu.Unlock()
	return os.ReadFile(name) // want `lockscope: os.ReadFile call while holding mu`
}

// unbufferedSendUnderLock blocks until a receiver shows up; if the
// receiver needs mu first, neither side moves again.
func unbufferedSendUnderLock(mu *sync.Mutex) {
	ch := make(chan int)
	mu.Lock()
	ch <- 1 // want `lockscope: send on an unbuffered channel while holding mu`
	mu.Unlock()
}

// bufferedSendIsFine: capacity decouples the send from the receiver.
func bufferedSendIsFine(mu *sync.Mutex) {
	ch := make(chan int, 8)
	mu.Lock()
	ch <- 1
	mu.Unlock()
}

// readLockCounts: an RLock holder blocks writers just the same.
func readLockCounts(c *mpi.Comm, mu *sync.RWMutex) {
	mu.RLock()
	c.Barrier() // want `lockscope: mpi collective Barrier while holding mu`
	mu.RUnlock()
}

// loopReacquire: the lock is released before the collective on every
// iteration path, including the back edge.
func loopReacquire(c *mpi.Comm, mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		mu.Unlock()
		c.Barrier()
	}
}

// suppressedBlock documents the sanctioned case: a single-process tool
// path where the mutex has no cross-rank contention by construction.
func suppressedBlock(mu *sync.Mutex, name string) ([]byte, error) {
	mu.Lock()
	defer mu.Unlock()
	//qlint:ignore lockscope single-process utility, mutex never contended across ranks
	return os.ReadFile(name)
}
