package globalcleanup

import (
	"testing"

	"qusim/internal/kernels"
	"qusim/internal/par"
)

// TestLeaksWorkerCount mutates the pool size and walks away: every test
// that runs after it inherits the two-worker pool.
func TestLeaksWorkerCount(t *testing.T) {
	par.SetWorkers(2) // want `globalcleanup: par\.SetWorkers mutates process-global state without a t\.Cleanup/defer restore in TestLeaksWorkerCount`
	t.Log("pool resized for the rest of the binary")
}

// TestCleanupMissesSetter registers a Cleanup, but it restores a different
// global than the one mutated — still a leak.
func TestCleanupMissesSetter(t *testing.T) {
	old := kernels.SetSplitBlock(8)
	par.SetWorkers(2) // want `globalcleanup: par\.SetWorkers mutates process-global state but no t\.Cleanup/defer in TestCleanupMissesSetter restores it`
	t.Cleanup(func() { kernels.SetSplitBlock(old) })
}

// TestRestoresViaCleanup is the canonical pattern: mutate, then register
// the restoring call. Nothing to flag.
func TestRestoresViaCleanup(t *testing.T) {
	old := par.SetWorkers(2)
	t.Cleanup(func() { par.SetWorkers(old) })
}

// TestRestoresViaDefer restores with a defer instead: equally fine.
func TestRestoresViaDefer(t *testing.T) {
	old := kernels.SetSplitBlock(8)
	defer kernels.SetSplitBlock(old)
	kernels.SetSelected(2, kernels.Split)
	defer kernels.SetSelected(2, kernels.Auto)
}

// TestSuppressed exercises the suppression path for a test whose entire
// point is the leaked value.
func TestSuppressed(t *testing.T) {
	//qlint:ignore globalcleanup fixture: the binary-wide worker count is the property under test
	par.SetWorkers(3)
}

// helperNotATest proves plain test-file helpers are held to the same rule.
func helperNotATest() {
	par.SetWorkers(4) // want `globalcleanup: par\.SetWorkers mutates process-global state without a t\.Cleanup/defer restore in helperNotATest`
}
