// Package globalcleanup is the analysistest corpus for the globalcleanup
// analyzer. The cases live in the in-package test file: the analyzer only
// looks at _test.go functions, because that is where an unrestored global
// leaks into every later test of the binary.
package globalcleanup
