// Package goroutinelife is the analysistest corpus for the goroutinelife
// analyzer: goroutines with no completion signal, the accepted join/cancel
// idioms, unresolvable spawn targets, and a reasoned suppression.
package goroutinelife

import (
	"context"
	"sync"
)

// leaks spawns a goroutine nothing can ever join.
func leaks() {
	go func() { // want `goroutinelife: goroutine has no provable join or cancel path`
		var total int
		for i := 0; i < 1e6; i++ {
			total += i
		}
		_ = total
	}()
}

// waitGroupJoin is the standard fan-out shape: Done inside, Wait outside.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// closeSignal announces completion by closing a channel.
func closeSignal() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

// sendSignal reports a result on a channel; the send is the join point.
func sendSignal() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// contextCancel blocks on ctx.Done — a receive, hence a cancel path.
func contextCancel(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// drainWorker is the named-callee case: the spawned declaration drains a
// channel with `for range`, so the spawn resolves and proves itself.
func drainWorker(tasks chan int) {
	go drain(tasks)
}

func drain(tasks chan int) {
	for t := range tasks {
		_ = t
	}
}

// unresolvable spawns through a function value; the body cannot be found
// in this unit, so the lifecycle is unprovable.
func unresolvable(fn func()) {
	go fn() // want `goroutinelife: goroutine body cannot be resolved in this package`
}

// suppressedLeak documents the sanctioned case: a process-lifetime
// background loop that is meant to die with the process.
func suppressedLeak() {
	//qlint:ignore goroutinelife process-lifetime metrics flusher, reaped at exit
	go func() {
		for {
			_ = len("tick")
		}
	}()
}
