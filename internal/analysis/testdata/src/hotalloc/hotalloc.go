// Package hotalloc is the analysistest corpus for the hotalloc analyzer:
// allocation and boxing inside the loops of //qusim:hot functions.
package hotalloc

import "qusim/internal/par"

// emit is a named sink with an interface parameter, for the boxing case.
func emit(v any) {}

// makeInLoop allocates a fresh buffer every iteration.
//
//qusim:hot
func makeInLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		buf := make([]int, 1) // want `hotalloc: make inside a //qusim:hot loop \(makeInLoop\) allocates per iteration`
		buf[0] = x
		total += buf[0]
	}
	return total
}

// compositeAppend grows a slice of structs: both the append and the
// literal are per-iteration allocations.
//
//qusim:hot
func compositeAppend(xs []int) []pair {
	out := make([]pair, 0, len(xs)) // prologue: outside every loop, allowed
	for _, x := range xs {
		out = append(out, pair{x, x}) // want `hotalloc: append inside a //qusim:hot loop \(compositeAppend\)` `hotalloc: composite literal allocates inside a //qusim:hot loop \(compositeAppend\)`
	}
	return out
}

type pair struct{ a, b int }

// boxesArg passes a concrete int where emit expects an interface: one box
// per iteration.
//
//qusim:hot
func boxesArg(xs []int) {
	for _, x := range xs {
		emit(x) // want `hotalloc: passing int to interface parameter of emit boxes inside a //qusim:hot loop \(boxesArg\)`
	}
}

// closureInLoop allocates a closure per iteration.
//
//qusim:hot
func closureInLoop(xs []int) []func() int {
	fns := make([]func() int, 0, len(xs))
	for i := range xs {
		fns = append(fns, func() int { return xs[i] }) // want `hotalloc: append inside a //qusim:hot loop \(closureInLoop\)` `hotalloc: function literal allocates a closure inside a //qusim:hot loop \(closureInLoop\)`
	}
	return fns
}

// stringConversion copies the byte slice into a string every iteration.
//
//qusim:hot
func stringConversion(words [][]byte) int {
	n := 0
	for _, w := range words {
		n += len(string(w)) // want `hotalloc: conversion to string copies inside a //qusim:hot loop \(stringConversion\)`
	}
	return n
}

// workerLoops mirrors the real kernels: the sweep loop lives inside a
// par.For worker closure, and the analyzer must follow it there. The
// worker's own prologue allocation is outside every loop and allowed.
//
//qusim:hot
func workerLoops(amps []float64) {
	par.For(len(amps), 1024, func(lo, hi int) {
		scratch := make([]float64, 4) // worker prologue: once per worker, allowed
		for i := lo; i < hi; i++ {
			tmp := append(scratch[:0], amps[i]) // want `hotalloc: append inside a //qusim:hot loop \(workerLoops\)`
			amps[i] = tmp[0]
		}
	})
}

// coldLoops allocates freely: no //qusim:hot marker, no findings.
func coldLoops(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// panicPath may build its message in the loop: a panicking iteration is
// not steady state, so the fmt-style boxing under panic is exempt.
//
//qusim:hot
func panicPath(xs []int) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			panic(errorAt(i, x))
		}
		total += x
	}
	return total
}

// errorAt boxes its operands — but only on the panic path above.
func errorAt(i, x any) string { return "negative amplitude count" }

// suppressedFunc exercises the function-scoped suppression path together
// with the hot marker.
//
//qusim:hot
//qlint:ignore hotalloc fixture: the append is O(bit positions) setup, not the amplitude sweep
func suppressedFunc(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// growBuf hides an allocation behind a helper: the append runs once per
// iteration of any loop that calls it, no matter whose body it sits in.
func growBuf(dst []int, x int) []int {
	return append(dst, x)
}

// scaleInPlace is a clean leaf: arithmetic only, nothing to hoist.
func scaleInPlace(xs []int, k int) {
	for i := range xs {
		xs[i] *= k
	}
}

// hiddenAllocViaHelper pins the single-level inlining step: the loop
// itself is allocation-free, but the helper it calls is not.
//
//qusim:hot
func hiddenAllocViaHelper(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = growBuf(out, x) // want `hotalloc: call to growBuf allocates per iteration inside a //qusim:hot loop \(hiddenAllocViaHelper\): append at line \d+`
		scaleInPlace(out, 2)
	}
	return out
}
