package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //qlint:ignore comment.
type directive struct {
	file     string
	line     int    // line the comment sits on (covers this line and the next)
	funcFrom int    // when set, the directive came from a func doc comment
	funcTo   int    // and covers the whole declaration
	analyzer string // analyzer being silenced

	pos  token.Position // full position, for stale-directive diagnostics
	used bool           // set by filterSuppressed when the directive fired
}

// collectDirectives parses every //qlint:ignore comment in the unit. A
// malformed directive (unknown analyzer, or no reason) yields a diagnostic
// instead of a suppression — the reason string is the audit trail that
// makes suppressions reviewable, so it is enforced, not suggested.
func collectDirectives(u *Unit) ([]directive, []Diagnostic) {
	known := byName()
	var dirs []directive
	var diags []Diagnostic
	report := func(pos ast.Node, msg string) {
		p := u.Fset.Position(pos.Pos())
		diags = append(diags, Diagnostic{Pos: p, Analyzer: "qlint", Message: msg})
	}
	for _, f := range u.Files {
		// Map each function declaration's doc comment to its body range so
		// a directive on the declaration covers the whole function.
		type span struct{ from, to int }
		funcSpan := map[*ast.CommentGroup]span{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				funcSpan[fd.Doc] = span{
					from: u.Fset.Position(fd.Pos()).Line,
					to:   u.Fset.Position(fd.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//qlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c, "qlint:ignore needs an analyzer name and a reason")
					continue
				}
				if _, ok := known[fields[0]]; !ok {
					report(c, "qlint:ignore names unknown analyzer "+fields[0]+" (have "+knownNames()+")")
					continue
				}
				if len(fields) < 2 {
					report(c, "qlint:ignore "+fields[0]+" needs a reason (why does the invariant not apply here?)")
					continue
				}
				pos := u.Fset.Position(c.Pos())
				d := directive{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					pos:      pos,
				}
				if sp, ok := funcSpan[cg]; ok {
					d.funcFrom, d.funcTo = sp.from, sp.to
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// filterSuppressed drops diagnostics covered by a directive: same file,
// same analyzer, and either on the directive's line, the line right below
// it, or anywhere in the function the directive's doc comment heads.
// Directives that suppressed something are marked used (in place), which
// is what -strict-ignores keys its staleness report on.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i := range dirs {
			dir := &dirs[i]
			if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 ||
				(dir.funcTo > 0 && d.Pos.Line >= dir.funcFrom && d.Pos.Line <= dir.funcTo) {
				dir.used = true
				suppressed = true
				// Keep scanning: another directive may also cover this
				// diagnostic and deserves its used mark too.
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
