module qusim

go 1.22
