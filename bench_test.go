package qusim

// One testing.B benchmark per table and figure of the paper's evaluation
// (Sec. 4). Each benchmark exercises the code path that regenerates the
// corresponding result; `go run ./cmd/experiments all` prints the full
// paper-vs-reproduced tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/ckpt"
	"qusim/internal/dist"
	"qusim/internal/emulate"
	"qusim/internal/f32vec"
	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/par"
	"qusim/internal/perfmodel"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
	"qusim/internal/telemetry"
)

const benchState = 20 // 2^20 amplitudes = 16 MiB

func benchSupremacy(n, depth int) *circuit.Circuit {
	r, c := circuit.GridForQubits(n)
	return circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: depth, Seed: 0, SkipInitialH: true,
	})
}

// BenchmarkFig2KernelSteps measures the optimization-step progression of
// Fig. 2: the same 4-qubit gate through the naive, in-place, split and
// specialized kernels.
func BenchmarkFig2KernelSteps(b *testing.B) {
	u := gate.RandomUnitary(4, randRNG(1))
	qs := []int{0, 1, 2, 3}
	for _, v := range kernels.Variants() {
		b.Run(v.String(), func(b *testing.B) {
			amps := make([]complex128, 1<<benchState)
			amps[0] = 1
			scratch := make([]complex128, len(amps))
			b.SetBytes(int64(len(amps) * 16 * 2))
			b.ResetTimer()
			src, dst := amps, scratch
			for i := 0; i < b.N; i++ {
				if v == kernels.Naive {
					kernels.Apply(v, src, u.Data, qs, dst)
					src, dst = dst, src
				} else {
					kernels.Apply(v, src, u.Data, qs, nil)
				}
			}
			b.ReportMetric(perfmodel.KernelFlops(benchState, 4)/1e9/b.Elapsed().Seconds()*float64(b.N), "GFLOPS")
		})
	}
}

// BenchmarkFig5aScheduling times the scheduler across circuit depths — the
// pre-computation the paper reports terminates in 1–3 s on a laptop.
func BenchmarkFig5aScheduling(b *testing.B) {
	for _, depth := range []int{10, 25, 50} {
		c := benchSupremacy(42, depth)
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Build(c, schedule.DefaultOptions(30)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5bScheduling sweeps qubit counts at depth 25.
func BenchmarkFig5bScheduling(b *testing.B) {
	for _, n := range []int{30, 36, 42, 45, 49} {
		c := benchSupremacy(n, 25)
		b.Run(fmt.Sprintf("qubits%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Build(c, schedule.DefaultOptions(30)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6HighLowOrder measures every kernel size on low- vs
// high-order qubits (the cache-associativity contrast of Fig. 6/9).
func BenchmarkFig6HighLowOrder(b *testing.B) {
	for k := 1; k <= 5; k++ {
		u := gate.RandomUnitary(k, randRNG(int64(k)))
		for _, order := range []string{"low", "high"} {
			qs := make([]int, k)
			for i := range qs {
				if order == "low" {
					qs[i] = i
				} else {
					qs[i] = benchState - k + i
				}
			}
			b.Run(fmt.Sprintf("k%d/%s", k, order), func(b *testing.B) {
				amps := make([]complex128, 1<<benchState)
				amps[0] = 1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
				}
				b.ReportMetric(perfmodel.KernelFlops(benchState, k)/1e9/b.Elapsed().Seconds()*float64(b.N), "GFLOPS")
			})
		}
	}
}

// BenchmarkFig7Scaling measures kernel throughput as the worker count
// doubles (Fig. 7/10 strong scaling).
func BenchmarkFig7Scaling(b *testing.B) {
	u := gate.RandomUnitary(4, randRNG(4))
	qs := []int{0, 1, 2, 3}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			old := par.SetWorkers(workers)
			b.Cleanup(func() { par.SetWorkers(old) })
			amps := make([]complex128, 1<<benchState)
			amps[0] = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
			}
		})
	}
}

// BenchmarkFig8MultiNode runs a scaled-down distributed simulation across
// simulated MPI ranks (Fig. 8).
func BenchmarkFig8MultiNode(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		c := benchSupremacy(16, 25)
		g := 0
		for 1<<g < ranks {
			g++
		}
		plan, err := schedule.Build(c, schedule.DefaultOptions(16-g))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.Run(plan, dist.Options{Ranks: ranks, Init: dist.InitUniform}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9EdisonKernels is the Edison variant of Fig. 6: kernels on a
// state sized to stress the last-level cache.
func BenchmarkFig9EdisonKernels(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		u := gate.RandomUnitary(k, randRNG(int64(90+k)))
		qs := make([]int, k)
		for i := range qs {
			qs[i] = benchState - k + i
		}
		b.Run(fmt.Sprintf("k%d-highorder", k), func(b *testing.B) {
			amps := make([]complex128, 1<<benchState)
			amps[0] = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
			}
		})
	}
}

// BenchmarkFig10SingleWorker is the Edison strong-scaling anchor point: the
// full single-worker sweep a 1-qubit gate needs.
func BenchmarkFig10SingleWorker(b *testing.B) {
	u := gate.H()
	old := par.SetWorkers(1)
	b.Cleanup(func() { par.SetWorkers(old) })
	amps := make([]complex128, 1<<benchState)
	amps[0] = 1
	b.SetBytes(int64(len(amps) * 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Apply(kernels.Specialized, amps, u.Data, []int{0}, nil)
	}
}

// BenchmarkTable1Clustering times cluster building for each kmax.
func BenchmarkTable1Clustering(b *testing.B) {
	c := benchSupremacy(30, 25)
	for _, kmax := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("kmax%d", kmax), func(b *testing.B) {
			opts := schedule.DefaultOptions(30)
			opts.KMax = kmax
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Build(c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2FullRuns runs the scaled-down Table 2 comparison: the
// scheduled simulator vs the per-gate scheme, end to end.
func BenchmarkTable2FullRuns(b *testing.B) {
	c := benchSupremacy(16, 25)
	plan, err := schedule.Build(c, schedule.DefaultOptions(13))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scheduled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.Run(plan, dist.Options{Ranks: 8, Init: dist.InitUniform}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.RunBaseline(c, dist.BaselineOptions{
				Ranks: 8, Init: dist.InitUniform, Specialize2Q: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSpecialization compares scheduling with and without
// gate specialization (Sec. 3.5 ablation).
func BenchmarkAblationSpecialization(b *testing.B) {
	c := benchSupremacy(36, 25)
	for _, spec := range []bool{true, false} {
		b.Run(fmt.Sprintf("specialize=%v", spec), func(b *testing.B) {
			opts := schedule.DefaultOptions(30)
			opts.SpecializeDiagonal2Q = spec
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Build(c, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFusion compares single-node execution with and without
// gate fusion (the Sec. 3.3 motivation for k-qubit kernels).
func BenchmarkAblationFusion(b *testing.B) {
	c := benchSupremacy(benchState, 25)
	for _, fusion := range []bool{true, false} {
		opts := schedule.DefaultOptions(benchState)
		opts.Clustering = fusion
		plan, err := schedule.Build(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fusion=%v", fusion), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := statevec.NewUniform(benchState)
				if err := plan.Run(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiagonalFastPath measures the specialized diagonal sweep
// against the dense 2-qubit kernel applying the same CZ.
func BenchmarkAblationDiagonalFastPath(b *testing.B) {
	b.Run("diagonal", func(b *testing.B) {
		v := statevec.NewUniform(benchState)
		for i := 0; i < b.N; i++ {
			v.ApplyCZ(3, 11)
		}
	})
	b.Run("dense", func(b *testing.B) {
		v := statevec.NewUniform(benchState)
		cz := gate.CZ()
		for i := 0; i < b.N; i++ {
			v.ApplyDense(cz, 3, 11)
		}
	})
}

// BenchmarkPermute compares local qubit permutation as a SwapBits
// transposition chain (the pre-optimization implementation, one half-state
// sweep per transposition) against the single-pass compiled gather kernel
// (one read of the state plus one write, whatever the permutation). The
// "state-passes" metric reports the memory-traffic model: the chain costs
// one full-state pass per transposition, the gather always two.
func BenchmarkPermute(b *testing.B) {
	for _, n := range []int{benchState, 24} {
		perm := randRNG(int64(n)).Perm(n)
		passes := float64(swapChainSteps(perm))
		b.Run(fmt.Sprintf("n%d/swapchain", n), func(b *testing.B) {
			v := statevec.NewUniform(n)
			b.SetBytes(int64(16 << n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.PermuteBitsSwapChain(perm)
			}
			b.ReportMetric(passes, "state-passes")
		})
		b.Run(fmt.Sprintf("n%d/singlepass", n), func(b *testing.B) {
			v := statevec.NewUniform(n)
			v.PermuteBits(perm) // pre-allocate the scratch buffer
			b.SetBytes(int64(16 << n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.PermuteBits(perm)
			}
			b.ReportMetric(2, "state-passes")
		})
	}
}

// swapChainSteps counts the SwapBits sweeps PermuteBitsSwapChain issues for
// perm — each one touches half the amplitudes twice, i.e. one full-state
// pass of memory traffic.
func swapChainSteps(perm []int) int {
	n := len(perm)
	cur := make([]int, n)
	loc := make([]int, n)
	for i := range cur {
		cur[i] = i
		loc[i] = i
	}
	steps := 0
	for p := 0; p < n; p++ {
		want, have := perm[p], cur[p]
		if have == want {
			continue
		}
		steps++
		other := loc[want]
		cur[p], cur[other] = want, have
		loc[have], loc[want] = other, p
	}
	return steps
}

// BenchmarkSwapFusion compares a global-to-local swap with its preceding
// local permutation executed as a separate full-state pass against the
// fused op the scheduler now emits, where the permutation rides inside the
// all-to-all unpack as an indexed gather.
func BenchmarkSwapFusion(b *testing.B) {
	c := benchSupremacy(benchState, 25)
	plan, err := schedule.Build(c, schedule.DefaultOptions(benchState-3))
	if err != nil {
		b.Fatal(err)
	}
	var fusedOp *schedule.Op
	for i := range plan.Ops {
		if op := &plan.Ops[i]; op.Kind == schedule.OpSwap && op.Perm != nil {
			fusedOp = op
			break
		}
	}
	if fusedOp == nil {
		b.Skip("no fused swap in plan")
	}
	mini := func(ops []schedule.Op) *schedule.Plan {
		return &schedule.Plan{
			N: plan.N, L: plan.L, Ops: ops,
			InitialPos: plan.InitialPos, FinalPos: plan.InitialPos,
		}
	}
	split := *fusedOp
	split.Perm = nil
	separate := mini([]schedule.Op{
		{Kind: schedule.OpLocalPerm, Perm: fusedOp.Perm, Stage: fusedOp.Stage},
		split,
	})
	fused := mini([]schedule.Op{*fusedOp})
	for _, bc := range []struct {
		name string
		plan *schedule.Plan
	}{{"separate", separate}, {"fused", fused}} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(16 << benchState))
			for i := 0; i < b.N; i++ {
				if _, err := dist.Run(bc.plan, dist.Options{Ranks: 8, Init: dist.InitUniform}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpoint records the checkpoint subsystem's cost baseline
// (BENCH_ckpt.json via make bench-ckpt): single-shard snapshot commit and
// verified restore throughput for a 16 MiB state, and the end-to-end
// overhead per-stage snapshots add to a distributed supremacy run — the
// plain/checkpointed pair yields the recorded slowdown factor.
func BenchmarkCheckpoint(b *testing.B) {
	const n = benchState
	state := statevec.NewUniform(n)
	meta := ckpt.Meta{PlanHash: "bench", N: n, L: n, Ranks: 1}

	b.Run("shard/write", func(b *testing.B) {
		dir := b.TempDir()
		b.SetBytes(int64(16 << n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ckpt.SaveState(dir, meta, state.Amps, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shard/restore", func(b *testing.B) {
		dir := b.TempDir()
		man, err := ckpt.SaveState(dir, meta, state.Amps, 2)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]complex128, 1<<n)
		b.SetBytes(int64(16 << n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ckpt.RestoreState(dir, man, dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	c := benchSupremacy(n, 25)
	plan, err := schedule.Build(c, schedule.DefaultOptions(n-3))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dist/plain", func(b *testing.B) {
		b.SetBytes(int64(16 << n))
		for i := 0; i < b.N; i++ {
			if _, err := dist.Run(plan, dist.Options{Ranks: 8, Init: dist.InitUniform}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dist/checkpointed", func(b *testing.B) {
		b.SetBytes(int64(16 << n))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // fresh dir so every run commits, none resumes
			b.StartTimer()
			if _, err := dist.Run(plan, dist.Options{
				Ranks: 8, Init: dist.InitUniform,
				Checkpoint: &ckpt.Policy{Dir: dir},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTelemetryOverhead records the telemetry cost baseline
// (BENCH_telemetry.json via make bench-telemetry): the same distributed
// 20-qubit supremacy run with telemetry disabled (the nil-check no-op path
// every production run pays) and fully armed (spans + metrics across dist,
// mpi, par and ckpt). The disabled path must stay within 2% of the
// pre-instrumentation cost; the recorded enabled/disabled pair documents
// both numbers.
func BenchmarkTelemetryOverhead(b *testing.B) {
	const n = benchState
	c := benchSupremacy(n, 25)
	plan, err := schedule.Build(c, schedule.DefaultOptions(n-2))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, tel *telemetry.Telemetry) {
		if _, err := dist.Run(plan, dist.Options{
			Ranks: 4, Init: dist.InitUniform, Telemetry: tel,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		b.SetBytes(int64(16 << n))
		for i := 0; i < b.N; i++ {
			run(b, telemetry.Disabled)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.Cleanup(func() {
			par.SetTelemetry(telemetry.Disabled)
			ckpt.SetTelemetry(telemetry.Disabled)
		})
		b.SetBytes(int64(16 << n))
		for i := 0; i < b.N; i++ {
			tel := telemetry.New()
			par.SetTelemetry(tel)
			ckpt.SetTelemetry(tel)
			run(b, tel)
		}
	})
}

func randRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// precState sizes the precision benchmarks: 2^26 amplitudes = 1 GiB in
// complex128, far beyond the last-level cache, so the halved memory
// traffic of the single-precision path is visible the way Sec. 5 predicts
// rather than hidden by cache residency.
const precState = 26

// BenchmarkKernelPrecision records the f32-vs-f64 kernel baseline
// (BENCH_kernels.json via make bench-kernels): the same k-qubit random
// unitary at the same qubit positions through the double- and
// single-precision Specialized kernels. The f32/f64 leaf pairs yield the
// recorded speedups; bytes/op counts one read + one write of the state at
// the respective element width, so MB/s compares traffic, not progress.
func BenchmarkKernelPrecision(b *testing.B) {
	for k := 1; k <= 5; k++ {
		u := gate.RandomUnitary(k, randRNG(int64(40+k)))
		// Mid-register positions: strands of ≥ 2^6 amplitudes, so the pair
		// measures the steady-state sweep rather than per-block setup (the
		// q < 3 tail has its own pairwise path and is a vanishing fraction
		// of any real circuit's work).
		qs := make([]int, k)
		for i := range qs {
			qs[i] = 6 + 3*i
		}
		u32 := kernels.ToComplex64(u.Data)
		b.Run(fmt.Sprintf("k%d/f64", k), func(b *testing.B) {
			amps := make([]complex128, 1<<precState)
			amps[0] = 1
			b.SetBytes(int64(len(amps) * 16 * 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.Apply(kernels.Specialized, amps, u.Data, qs, nil)
			}
		})
		b.Run(fmt.Sprintf("k%d/f32", k), func(b *testing.B) {
			amps := make([]complex64, 1<<precState)
			amps[0] = 1
			b.SetBytes(int64(len(amps) * 8 * 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.ApplyF32(kernels.Specialized, amps, u32, qs, nil)
			}
		})
	}
}

// BenchmarkCircuitPrecision records the end-to-end precision pair on the
// same circuit: a 24-qubit depth-25 supremacy instance (every gate k ≤ 2 —
// dense 1-qubit gates plus T/CZ diagonals) executed gate by gate in double
// and single precision. This is the headline f32-vs-f64 number of
// BENCH_kernels.json; the per-kernel pairs above decompose it.
func BenchmarkCircuitPrecision(b *testing.B) {
	const n = 24
	c := benchSupremacy(n, 25)
	b.Run("supremacy24/f64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := statevec.NewUniform(n)
			for j := range c.Gates {
				g := &c.Gates[j]
				v.Apply(g.Matrix(), g.Qubits...)
			}
		}
	})
	b.Run("supremacy24/f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := f32vec.NewUniform(n)
			for j := range c.Gates {
				g := &c.Gates[j]
				v.ApplyGate(g.Matrix(), g.Qubits...)
			}
		}
	})
}

// BenchmarkKernelFusion records the fused-vs-unfused execution baseline
// for the kmax = 5 scheduler (Table 1 / Sec. 3.3): the same supremacy
// circuit executed from a clustered plan (one ≤5-qubit kernel per fused
// cluster) and from an unclustered plan (one kernel per gate). The
// fused/separate leaf pair yields the recorded speedup.
func BenchmarkKernelFusion(b *testing.B) {
	c := benchSupremacy(benchState, 25)
	plans := map[string]*schedule.Plan{}
	for name, clustering := range map[string]bool{"fused": true, "separate": false} {
		opts := schedule.DefaultOptions(benchState)
		opts.Clustering = clustering
		plan, err := schedule.Build(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		plans[name] = plan
	}
	for _, name := range []string{"separate", "fused"} {
		plan := plans[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := statevec.NewUniform(benchState)
				if err := plan.Run(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmulationVsGates reproduces the related-work comparison ([7]):
// FFT-based QFT emulation vs gate-by-gate simulation of the QFT circuit.
// Emulation is asymptotically cheaper but, as the paper notes, inapplicable
// to supremacy circuits.
func BenchmarkEmulationVsGates(b *testing.B) {
	n := 18
	c := circuit.QFT(n)
	b.Run("gates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := statevec.NewUniform(n)
			for j := range c.Gates {
				g := &c.Gates[j]
				v.Apply(g.Matrix(), g.Qubits...)
			}
		}
	})
	b.Run("emulated-fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := statevec.NewUniform(n)
			emulate.QFT(v, false)
		}
	})
}
