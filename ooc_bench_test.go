package qusim

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"qusim/internal/oocvec"
	"qusim/internal/schedule"
	"qusim/internal/telemetry"
)

// benchEnvInt reads an integer override from the environment — the
// bench-oocvec make target uses these to scale the out-of-core benchmark to
// a ≥28-qubit (multi-GiB) state while bench-smoke keeps the small default.
func benchEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// BenchmarkOOCPrefetch measures the circuit-aware prefetch pipeline against
// the reactive one-pass-per-op baseline on the same plan (the
// prefetch/reactive pair in BENCH_oocvec.json). The pipeline wins on two
// fronts the access map makes possible: every stage's local ops fuse into a
// single streamed pass (the reactive path re-reads the whole file once per
// op), and chunk I/O overlaps compute through the reader/writeback
// goroutines. The prefetch leaf also reports the hit rate — the fraction of
// chunks already buffered when the compute loop asked for them.
//
// Size via QUSIM_OOC_QUBITS / QUSIM_OOC_CHUNK / QUSIM_OOC_DEPTH /
// QUSIM_OOC_PREFETCH (defaults 20 / qubits−6 / 16 / 4; `make bench-oocvec`
// records 28 qubits = a 4 GiB state file).
func BenchmarkOOCPrefetch(b *testing.B) {
	n := benchEnvInt("QUSIM_OOC_QUBITS", 20)
	l := benchEnvInt("QUSIM_OOC_CHUNK", n-6)
	depth := benchEnvInt("QUSIM_OOC_DEPTH", 16)
	pf := benchEnvInt("QUSIM_OOC_PREFETCH", 4)
	circ := benchSupremacy(n, depth)
	opts := schedule.DefaultOptions(l)
	plan, err := schedule.Build(circ, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		depth int
	}{
		{"reactive", 0},
		{"prefetch", pf},
	} {
		b.Run(fmt.Sprintf("n%d/%s", n, mode.name), func(b *testing.B) {
			tel := telemetry.New()
			v, err := oocvec.NewUniform(n, l, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer v.Close()
			v.SetPrefetch(mode.depth)
			v.SetTelemetry(tel)
			// One full pass over the state file per streamed stage (the
			// minimum any paged executor must move); ns/op captures how far
			// each mode is from that floor.
			b.SetBytes(int64(plan.Stats.Stages) * 2 * 16 << n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Run(plan); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reg := tel.Registry()
			hits := reg.Counter("oocvec.prefetch_hits").Value()
			misses := reg.Counter("oocvec.prefetch_misses").Value()
			if total := hits + misses; total > 0 {
				b.ReportMetric(100*float64(hits)/float64(total), "hit%")
				b.ReportMetric(float64(reg.Counter("oocvec.chunks_read").Value())/float64(b.N), "chunks/op")
			}
		})
	}
}
