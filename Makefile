GO ?= go

# Pinned versions of the external linters the lint job runs. Pinned, not
# @latest: a new upstream release must not be able to break CI before a
# human has looked at it. Bump deliberately, in a PR of its own.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test race verify lint lint-tools chaos-smoke fuzz \
	fuzz-smoke bench bench-smoke bench-permute bench-ckpt bench-telemetry \
	bench-oocvec bench-kernels bench-workloads coverage

# Compile every package and link every command into bin/, so a broken
# main package fails the build even though `go build ./...` discards
# command binaries.
build:
	$(GO) build ./...
	$(GO) build -o bin/ ./cmd/...

# Tier-1: what CI runs on every change.
test:
	$(GO) vet ./...
	$(GO) test ./...

# Tier-1 with the race detector — required before merging anything that
# touches internal/par, internal/mpi, internal/dist or internal/telemetry.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Differential + metamorphic verification across every backend pair,
# plus MPI fault-injection scenarios (see DESIGN.md §6).
verify: build lint
	$(GO) run ./cmd/qverify -quick

# Domain lint (DESIGN.md §10): build qlint and run every analyzer over
# every package, then the pinned external linters. -strict-ignores makes a
# stale //qlint:ignore directive an exit-code-visible finding, so dead
# suppressions cannot accumulate. QLINT_FLAGS lets CI add -github/-json
# without a second target. staticcheck/govulncheck are skipped with a
# notice when not installed (they need the network to install, which the
# offline dev loop may not have); `make lint-tools` installs them and CI
# always runs with them present.
QLINT_FLAGS ?=
lint:
	$(GO) build -o bin/qlint ./cmd/qlint
	./bin/qlint -strict-ignores $(QLINT_FLAGS) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed (make lint-tools); skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed (make lint-tools); skipping"; \
	fi

# Install the pinned external linters (network required; CI caches the
# result keyed on this Makefile, so the pins are the cache key).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Chaos soak (DESIGN.md §13): seeded random circuits across the
# statevec/dist/oocvec backends under composed rank, disk and stall fault
# schedules, asserting every run lands bitwise identical to a clean one.
# The pinned seed keeps the CI job deterministic; bump -runs (or loop over
# seeds) for a longer local soak. A mismatch drops a ddmin-minimized
# reproducer circuit under chaos-repro/.
chaos-smoke:
	$(GO) run ./cmd/qchaos -seed 1 -runs 25 -budget 60s -repro chaos-repro -v

# Longer fuzz burst for the scheduler equivalence oracle.
fuzz:
	$(GO) test ./internal/schedule -fuzz FuzzScheduleEquivalence -fuzztime 60s

# CI's 10-second burst over every fuzz target (one -fuzz pattern per
# go test invocation is a toolchain limit).
fuzz-smoke:
	$(GO) test ./internal/schedule -fuzz FuzzScheduleEquivalence -fuzztime 10s
	$(GO) test ./internal/schedule -fuzz FuzzChunkAccess -fuzztime 10s
	$(GO) test ./internal/ckpt -fuzz FuzzShardDecode -fuzztime 10s
	$(GO) test ./internal/ckpt -fuzz FuzzManifestDecode -fuzztime 10s
	$(GO) test ./internal/kernels -fuzz FuzzBitPermutation -fuzztime 10s

bench:
	$(GO) test -bench=. -benchmem

# CI's parse gate: every benchmark must run one iteration and produce
# output benchjson -strict accepts.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -strict > /dev/null

# Permutation-pipeline perf baseline: runs the single-pass permutation and
# swap-fusion benchmarks and records the results (with derived speedups
# over the SwapBits-chain / unfused baselines) in BENCH_permute.json.
# Three repetitions; benchjson keeps the fastest of each to suppress
# scheduler noise on shared machines.
bench-permute:
	$(GO) test -run '^$$' -bench 'BenchmarkPermute|BenchmarkSwapFusion' -benchtime 5x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_permute.json

# Checkpoint subsystem baseline: shard write/restore throughput and the
# end-to-end overhead per-stage snapshots add to a distributed run,
# recorded (with the derived checkpointed-vs-plain ratio) in
# BENCH_ckpt.json.
bench-ckpt:
	$(GO) test -run '^$$' -bench 'BenchmarkCheckpoint' -benchtime 3x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_ckpt.json

# Telemetry overhead baseline: the same distributed run with telemetry
# disabled and enabled; the derived enabled-vs-disabled ratio recorded in
# BENCH_telemetry.json is the disabled-path overhead bound (the "enabled"
# speedup must stay ≥ 0.98, i.e. ≤ 2% overhead, per DESIGN.md §9).
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchtime 3x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_telemetry.json

# Single-precision kernel-suite baseline: per-k f32-vs-f64 Specialized
# kernel pairs on a 1 GiB state, the per-gate supremacy-circuit precision
# pair (every gate k ≤ 2), and the kmax=5 fused-vs-unfused execution pair,
# recorded (with the derived f32/f64 and fused/separate speedups) in
# BENCH_kernels.json. Three repetitions; benchjson keeps the fastest of
# each, which also drops the first-touch page-fault cost of the 1 GiB
# state allocations.
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelPrecision|BenchmarkCircuitPrecision|BenchmarkKernelFusion' -benchtime 3x -count 3 -timeout 60m . | $(GO) run ./cmd/benchjson > BENCH_kernels.json

# Out-of-core prefetch baseline: the circuit-aware prefetch pipeline vs the
# reactive one-pass-per-op baseline on a 28-qubit (4 GiB state file) run,
# recorded (with the derived prefetch-vs-reactive speedup and the
# prefetch-hit rate) in BENCH_oocvec.json. Override QUSIM_OOC_QUBITS /
# QUSIM_OOC_CHUNK to size to the machine (state file = 16·2^qubits bytes,
# chunk buffer = 16·2^chunk bytes, both ×2 transiently during a swap).
bench-oocvec:
	QUSIM_OOC_QUBITS=28 QUSIM_OOC_CHUNK=22 $(GO) test -run '^$$' -bench 'BenchmarkOOCPrefetch' -benchtime 1x -count 2 -timeout 60m . | $(GO) run ./cmd/benchjson > BENCH_oocvec.json

# Named-workload catalog baseline: cmd/qbench runs every family at both
# tiers (quick = the CI smoke sizes, full = nightly/real-host sizes) with
# every correctness expectation enforced, and the merged benchmark lines
# are recorded in BENCH_workloads.json. CI's workload-smoke job re-runs
# the quick tier and gates its ns/op against this file via
# `benchjson -compare`, so refresh it (on a quiet machine) whenever a PR
# deliberately shifts workload performance.
bench-workloads:
	($(GO) run ./cmd/qbench -quick -bench && $(GO) run ./cmd/qbench -full -bench) | $(GO) run ./cmd/benchjson -strict > BENCH_workloads.json

# Coverage floors for the subsystems the workload catalog leans on for
# correctness scoring. The gate is deliberately narrow: these two packages
# decide whether a perf regression PR also broke the physics, so their
# estimator/trajectory logic stays ≥ 90% covered.
coverage:
	@for entry in ./internal/xeb:90 ./internal/noise:90 ./internal/analysis:85; do \
		pkg=$${entry%:*}; floor=$${entry##*:}; \
		$(GO) test -coverprofile=coverage.out $$pkg >/dev/null || exit 1; \
		total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{gsub(/%/,"",$$3); print $$3}'); \
		echo "coverage: $$pkg $$total% (floor $$floor%)"; \
		if [ "$$(awk -v t="$$total" -v f="$$floor" 'BEGIN { print (t+0 >= f+0) ? 1 : 0 }')" != "1" ]; then \
			echo "coverage: $$pkg is below the $$floor% floor"; exit 1; \
		fi; \
	done
