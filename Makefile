GO ?= go

.PHONY: build test race verify fuzz bench bench-permute bench-ckpt

build:
	$(GO) build ./...

# Tier-1: what CI runs on every change.
test:
	$(GO) vet ./...
	$(GO) test ./...

# Tier-1 with the race detector — required before merging anything that
# touches internal/par, internal/mpi or internal/dist.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Differential + metamorphic verification across every backend pair,
# plus MPI fault-injection scenarios (see DESIGN.md §6).
verify:
	$(GO) run ./cmd/qverify -quick

# Longer fuzz burst for the scheduler equivalence oracle.
fuzz:
	$(GO) test ./internal/schedule -fuzz FuzzScheduleEquivalence -fuzztime 60s

bench:
	$(GO) test -bench=. -benchmem

# Permutation-pipeline perf baseline: runs the single-pass permutation and
# swap-fusion benchmarks and records the results (with derived speedups
# over the SwapBits-chain / unfused baselines) in BENCH_permute.json.
# Three repetitions; benchjson keeps the fastest of each to suppress
# scheduler noise on shared machines.
bench-permute:
	$(GO) test -run '^$$' -bench 'BenchmarkPermute|BenchmarkSwapFusion' -benchtime 5x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_permute.json

# Checkpoint subsystem baseline: shard write/restore throughput and the
# end-to-end overhead per-stage snapshots add to a distributed run,
# recorded (with the derived checkpointed-vs-plain ratio) in
# BENCH_ckpt.json.
bench-ckpt:
	$(GO) test -run '^$$' -bench 'BenchmarkCheckpoint' -benchtime 3x -count 3 . | $(GO) run ./cmd/benchjson > BENCH_ckpt.json
