// Package qusim is a distributed full-state-vector quantum circuit
// simulator reproducing "0.5 Petabyte Simulation of a 45-Qubit Quantum
// Circuit" (Häner & Steiger, SC 2017). It provides:
//
//   - a circuit IR with the standard supremacy-circuit gate set and
//     generators for Google's random supremacy circuits, QFT, GHZ and
//     Grover (package internal/circuit, re-exported here);
//   - optimized in-place k-qubit gate kernels with an autotuning layer
//     replacing the paper's code generator (internal/kernels,
//     internal/statevec);
//   - the circuit scheduler of Sec. 3.6: communication-minimizing stages,
//     gate fusion into k ≤ kmax clusters, and qubit mapping
//     (internal/schedule);
//   - a simulated-MPI distributed engine implementing the global-to-local
//     swap scheme with gate specialization (internal/mpi, internal/dist);
//   - analytic roofline and network models used to project results to the
//     paper's Cori II / Edison configurations (internal/perfmodel).
//
// Quick start:
//
//	c := qusim.Supremacy(qusim.SupremacyOptions{Rows: 4, Cols: 4, Depth: 16, Seed: 1})
//	st := qusim.NewState(c.N)
//	qusim.Simulate(c, st)
//	fmt.Println(st.Entropy())
//
// Distributed (8 simulated ranks):
//
//	plan, _ := qusim.Schedule(c, qusim.DefaultScheduleOptions(c.N-3))
//	res, _ := qusim.RunDistributed(plan, qusim.DistOptions{Ranks: 8})
package qusim

import (
	"math/rand"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/emulate"
	"qusim/internal/gate"
	"qusim/internal/kernels"
	"qusim/internal/noise"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
	"qusim/internal/xeb"
)

// Circuit types and generators.
type (
	// Circuit is an ordered list of gates on N qubits.
	Circuit = circuit.Circuit
	// Gate is a single circuit operation.
	Gate = circuit.Gate
	// SupremacyOptions configures the random supremacy-circuit generator
	// (Fig. 1 of the paper).
	SupremacyOptions = circuit.SupremacyOptions
	// Matrix is a dense unitary on K qubits.
	Matrix = gate.Matrix
)

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.NewCircuit(n) }

// Supremacy generates a Google-style random supremacy circuit.
func Supremacy(opts SupremacyOptions) *Circuit { return circuit.Supremacy(opts) }

// QFT returns the quantum Fourier transform circuit on n qubits.
func QFT(n int) *Circuit { return circuit.QFT(n) }

// GHZ returns the GHZ-state preparation circuit on n qubits.
func GHZ(n int) *Circuit { return circuit.GHZ(n) }

// Grover returns iters Grover iterations searching for basis state marked.
func Grover(n, marked, iters int) *Circuit { return circuit.Grover(n, marked, iters) }

// GridForQubits returns the paper's grid shape for a qubit count
// (30 → 6×5, 36 → 6×6, 42 → 7×6, 45 → 9×5, 49 → 7×7).
func GridForQubits(n int) (rows, cols int) { return circuit.GridForQubits(n) }

// Gate constructors (see internal/circuit for the full set).
var (
	H     = circuit.NewH
	X     = circuit.NewX
	Y     = circuit.NewY
	Z     = circuit.NewZ
	S     = circuit.NewS
	T     = circuit.NewT
	XHalf = circuit.NewXHalf
	YHalf = circuit.NewYHalf
	Rz    = circuit.NewRz
	CZ    = circuit.NewCZ
	CNOT  = circuit.NewCNOT
	Swap  = circuit.NewSwap
)

// State is a single-node state vector of 2^n amplitudes.
type State = statevec.Vector

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State { return statevec.New(n) }

// NewUniformState returns the uniform superposition — the direct
// initialization replacing the supremacy circuits' initial Hadamard cycle.
func NewUniformState(n int) *State { return statevec.NewUniform(n) }

// Simulate applies every gate of c to st, gate by gate (no scheduling).
func Simulate(c *Circuit, st *State) {
	for i := range c.Gates {
		g := &c.Gates[i]
		st.Apply(g.Matrix(), g.Qubits...)
	}
}

// Scheduling.
type (
	// Plan is a scheduled, executable form of a circuit.
	Plan = schedule.Plan
	// ScheduleOptions configures the scheduler (Sec. 3.6).
	ScheduleOptions = schedule.Options
	// PlanStats summarizes swaps, clusters and baseline comparisons.
	PlanStats = schedule.Stats
)

// DefaultScheduleOptions returns the paper's default configuration with the
// given number of local qubits.
func DefaultScheduleOptions(localQubits int) ScheduleOptions {
	return schedule.DefaultOptions(localQubits)
}

// Schedule builds an execution plan for c.
func Schedule(c *Circuit, opts ScheduleOptions) (*Plan, error) { return schedule.Build(c, opts) }

// Distributed execution.
type (
	// DistOptions configures a distributed run across simulated MPI ranks.
	DistOptions = dist.Options
	// DistResult reports entropy, norm and communication statistics.
	DistResult = dist.Result
	// BaselineOptions configures the per-gate reference scheme of [5].
	BaselineOptions = dist.BaselineOptions
)

// Initial-state selectors for distributed runs.
const (
	InitZero    = dist.InitZero
	InitUniform = dist.InitUniform
)

// RunDistributed executes a plan across opts.Ranks simulated MPI ranks.
func RunDistributed(plan *Plan, opts DistOptions) (*DistResult, error) {
	return dist.Run(plan, opts)
}

// RunBaseline executes a circuit with the per-gate communication scheme the
// paper compares against.
func RunBaseline(c *Circuit, opts BaselineOptions) (*DistResult, error) {
	return dist.RunBaseline(c, opts)
}

// Tune runs the kernel autotuner (the stand-in for the paper's
// code-generation/benchmarking feedback loop) for gate sizes 1…kmax on a
// 2^n-amplitude scratch state and installs the fastest variants.
func Tune(kmax, n int) {
	kernels.Tune(kmax, n, 2)
}

// Noise and benchmarking (the calibration/validation use cases of Sec. 1).
type (
	// NoiseChannel is a stochastic single-qubit Pauli channel.
	NoiseChannel = noise.Channel
	// NoiseResult aggregates a Monte Carlo trajectory study.
	NoiseResult = noise.Result
)

// DepolarizingNoise returns the depolarizing channel with total error
// probability p per gate-qubit.
func DepolarizingNoise(p float64) NoiseChannel { return noise.Depolarizing(p) }

// SimulateNoisy runs Monte Carlo noise trajectories of c and reports the
// mean fidelity and trajectory-averaged output distribution.
func SimulateNoisy(c *Circuit, ch NoiseChannel, trajectories int, rng *rand.Rand) (*NoiseResult, error) {
	return noise.Run(c, ch, trajectories, false, rng)
}

// PorterThomasEntropy returns the expected output entropy (nats) of a
// chaotic n-qubit circuit.
func PorterThomasEntropy(n int) float64 { return xeb.PorterThomasEntropy(n) }

// LinearXEB returns the linear cross-entropy benchmarking fidelity of the
// samples against the ideal probabilities.
func LinearXEB(n int, probs []float64, samples []int) (float64, error) {
	return xeb.LinearXEB(n, probs, samples)
}

// EmulateQFT applies the quantum Fourier transform via an FFT over the
// amplitudes — the classical shortcut of [7], inapplicable to supremacy
// circuits but far faster than gate-by-gate QFT simulation. The result
// matches Simulate(QFT(n), st) (gate convention, no bit reversal).
func EmulateQFT(st *State) { emulate.QFT(st, false) }
