package qusim

// Cross-subsystem integration tests: the same circuit simulated through
// every execution path in the repository must agree amplitude-for-
// amplitude — naive single-node, scheduled single-node plan, distributed
// across ranks, per-gate baseline, out-of-core file-backed, and single
// precision (to reduced tolerance).

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"qusim/internal/circuit"
	"qusim/internal/dist"
	"qusim/internal/f32vec"
	"qusim/internal/gate"
	"qusim/internal/oocvec"
	"qusim/internal/schedule"
	"qusim/internal/statevec"
	"qusim/internal/xeb"
)

const (
	integN     = 14
	integDepth = 20
	integRanks = 8
	integL     = integN - 3
)

func integCircuit(t testing.TB) *circuit.Circuit {
	r, c := circuit.GridForQubits(integN)
	return circuit.Supremacy(circuit.SupremacyOptions{
		Rows: r, Cols: c, Depth: integDepth, Seed: 77, SkipInitialH: true,
	})
}

func integPlan(t testing.TB, circ *circuit.Circuit) *schedule.Plan {
	plan, err := schedule.Build(circ, schedule.DefaultOptions(integL))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func integReference(circ *circuit.Circuit) *statevec.Vector {
	v := statevec.NewUniform(circ.N)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		v.Apply(g.Matrix(), g.Qubits...)
	}
	return v
}

func TestAllExecutionPathsAgree(t *testing.T) {
	circ := integCircuit(t)
	plan := integPlan(t, circ)
	ref := integReference(circ)

	// Path 1: single-node plan execution.
	planned := statevec.NewUniform(circ.N)
	if err := plan.Run(planned); err != nil {
		t.Fatal(err)
	}
	// Path 2: distributed.
	dres, err := dist.Run(plan, dist.Options{Ranks: integRanks, Init: dist.InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	// Path 3: per-gate baseline.
	bres, err := dist.RunBaseline(circ, dist.BaselineOptions{
		Ranks: integRanks, Init: dist.InitUniform, Specialize2Q: true, GatherState: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path 4: out-of-core.
	ooc, err := oocvec.NewUniform(circ.N, integL, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}
	oocAmps, err := ooc.Amplitudes()
	if err != nil {
		t.Fatal(err)
	}

	var maxPlan, maxDist, maxBase, maxOoc float64
	for b := 0; b < 1<<circ.N; b++ {
		want := ref.Amplitude(b)
		pi := plan.PermutedIndex(b)
		maxPlan = math.Max(maxPlan, cmplx.Abs(want-planned.Amplitude(pi)))
		maxDist = math.Max(maxDist, cmplx.Abs(want-dres.Amplitudes[pi]))
		maxBase = math.Max(maxBase, cmplx.Abs(want-bres.Amplitudes[b]))
		maxOoc = math.Max(maxOoc, cmplx.Abs(want-oocAmps[pi]))
	}
	for name, d := range map[string]float64{
		"scheduled single-node": maxPlan,
		"distributed":           maxDist,
		"per-gate baseline":     maxBase,
		"out-of-core":           maxOoc,
	} {
		if d > 1e-9 {
			t.Errorf("%s path deviates from naive simulation: max diff %g", name, d)
		}
	}
}

func TestSinglePrecisionPathAgrees(t *testing.T) {
	circ := integCircuit(t)
	ref := integReference(circ)
	s := f32vec.NewUniform(circ.N)
	for i := range circ.Gates {
		g := &circ.Gates[i]
		qs := append([]int(nil), g.Qubits...)
		m := g.Matrix()
		if !sort.IntsAreSorted(qs) {
			idx := make([]int, len(qs))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return qs[idx[a]] < qs[idx[b]] })
			perm := make([]int, len(qs))
			for rank, j := range idx {
				perm[j] = rank
			}
			m = gate.PermuteQubits(m, perm)
			sort.Ints(qs)
		}
		s.Apply(m, qs)
	}
	if d := s.MaxDiff(ref); d > 1e-4 {
		t.Errorf("single-precision path max diff %g", d)
	}
}

func TestEntropyConsistentAcrossPaths(t *testing.T) {
	circ := integCircuit(t)
	plan := integPlan(t, circ)
	ref := integReference(circ)
	want := ref.Entropy()

	dres, err := dist.Run(plan, dist.Options{Ranks: integRanks, Init: dist.InitUniform})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dres.Entropy-want) > 1e-9 {
		t.Errorf("distributed entropy %v, want %v", dres.Entropy, want)
	}
	ooc, err := oocvec.NewUniform(circ.N, integL, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if err := ooc.Run(plan); err != nil {
		t.Fatal(err)
	}
	oe, err := ooc.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oe-want) > 1e-9 {
		t.Errorf("out-of-core entropy %v, want %v", oe, want)
	}
	// The physics check: deep supremacy output is Porter-Thomas.
	if math.Abs(want-xeb.PorterThomasEntropy(circ.N)) > 0.15 {
		t.Errorf("entropy %v far from Porter-Thomas %v", want, xeb.PorterThomasEntropy(circ.N))
	}
}

func TestDistributedSamplesScoreHighXEB(t *testing.T) {
	circ := integCircuit(t)
	plan := integPlan(t, circ)
	ref := integReference(circ)
	shots := 20000
	res, err := dist.Run(plan, dist.Options{
		Ranks: integRanks, Init: dist.InitUniform, SampleShots: shots, SampleSeed: 123,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs := ref.Probabilities()
	lin, err := xeb.LinearXEB(circ.N, probs, res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin-1) > 0.15 {
		t.Errorf("linear XEB of distributed samples = %v, want ≈ 1 (ideal sampler)", lin)
	}
}

func TestSerializedPlanDistributedRun(t *testing.T) {
	circ := integCircuit(t)
	plan := integPlan(t, circ)
	var buf bytes.Buffer
	if err := schedule.WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	plan2, err := schedule.ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dist.Run(plan, dist.Options{Ranks: integRanks, Init: dist.InitUniform})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.Run(plan2, dist.Options{Ranks: integRanks, Init: dist.InitUniform})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Entropy-b.Entropy) > 1e-12 {
		t.Errorf("serialized plan gives different entropy: %v vs %v", a.Entropy, b.Entropy)
	}
}

func TestMeasurementAfterDistributedGather(t *testing.T) {
	circ := integCircuit(t)
	plan := integPlan(t, circ)
	res, err := dist.Run(plan, dist.Options{Ranks: integRanks, Init: dist.InitUniform, GatherState: true})
	if err != nil {
		t.Fatal(err)
	}
	v := statevec.FromAmplitudes(res.Amplitudes)
	rng := rand.New(rand.NewSource(9))
	b := v.MeasureAll(rng)
	if math.Abs(v.Probability(b)-1) > 1e-9 {
		t.Errorf("state not collapsed after MeasureAll")
	}
}
