// Noise study: Monte Carlo trajectory simulation of a supremacy circuit
// under depolarizing noise (the "studies of their behavior under noise"
// use case of Sec. 1), cross-checked against the first-order fidelity
// estimate and the linear-XEB score a noisy device would achieve.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qusim"
	"qusim/internal/noise"
	"qusim/internal/xeb"
)

func main() {
	const n = 12
	rows, cols := qusim.GridForQubits(n)
	c := qusim.Supremacy(qusim.SupremacyOptions{Rows: rows, Cols: cols, Depth: 20, Seed: 11})

	// Ideal reference.
	ideal := qusim.NewState(n)
	qusim.Simulate(c, ideal)
	probs := ideal.Probabilities()

	fmt.Printf("%d-qubit depth-20 supremacy circuit, %d gates\n", n, len(c.Gates))
	fmt.Printf("%-22s %-16s %-18s %-14s\n",
		"per-gate error rate", "mean fidelity", "first-order (1-p)^g", "linear XEB")
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0, 0.0005, 0.002, 0.01} {
		ch := noise.Depolarizing(p)
		res, err := noise.Run(c, ch, 60, false, rng)
		if err != nil {
			log.Fatal(err)
		}
		// What a device with this noise level would score on XEB: sample
		// from the trajectory-averaged distribution.
		samples := sampleFrom(res.MeanProbs, 20000, rng)
		lin, err := xeb.LinearXEB(n, probs, samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22.4f %-16.4f %-18.4f %-14.4f\n",
			p, res.MeanFidelity, noise.ExpectedGateFidelity(c, ch), lin)
	}
	fmt.Println("\nfidelity decays as (1-p)^gates — the simulator quantifies exactly how")
	fmt.Println("much noise a supremacy demonstration can tolerate.")
}

func sampleFrom(probs []float64, shots int, rng *rand.Rand) []int {
	cdf := make([]float64, len(probs)+1)
	for i, p := range probs {
		cdf[i+1] = cdf[i] + p
	}
	out := make([]int, shots)
	for s := range out {
		r := rng.Float64() * cdf[len(cdf)-1]
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[s] = lo
	}
	return out
}
