// QFT: period finding with the quantum Fourier transform — a workload
// dominated by diagonal controlled-phase gates, which the scheduler's gate
// specialization (Sec. 3.5) executes on global qubits without any
// communication.
package main

import (
	"fmt"
	"log"
	"math"

	"qusim"
)

func main() {
	const n = 20
	const period = 32 // power of two so the QFT peaks are exact

	// Prepare a periodic state: equal superposition of |0⟩, |r⟩, |2r⟩, …
	st := qusim.NewState(n)
	count := 0
	for b := 0; b < st.Len(); b += period {
		count++
	}
	amp := complex(1/math.Sqrt(float64(count)), 0)
	st.Amps[0] = 0
	for b := 0; b < st.Len(); b += period {
		st.Amps[b] = amp
	}

	// Apply the QFT (plus its bit reversal).
	c := qusim.QFT(n)
	qusim.Simulate(c, st)
	st.ReverseBits()

	fmt.Printf("%d-qubit QFT of a period-%d state (%d gates, depth %d)\n",
		n, period, len(c.Gates), c.Depth())
	fmt.Println("output peaks (expect multiples of 2^n/period):")
	for b := 0; b < st.Len(); b++ {
		if p := st.Probability(b); p > 1e-6 {
			fmt.Printf("  |%d⟩: p = %.6f (k·2^n/r for k = %d)\n", b, p, b/(st.Len()/period))
		}
	}

	// The same circuit scheduled for a distributed run: nearly every
	// controlled-phase gate is diagonal, so communication stays minimal.
	plan, err := qusim.Schedule(c, qusim.DefaultScheduleOptions(n-3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed schedule (8 ranks): %d swaps, %d diagonal specializations, %d clusters\n",
		plan.Stats.Swaps, plan.Stats.DiagonalOps, plan.Stats.Clusters)
	res, err := qusim.RunDistributed(plan, qusim.DistOptions{Ranks: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run: %.3fs, %d comm steps, norm %.9f\n",
		res.Elapsed.Seconds(), res.CommSteps, res.Norm)
}
