// Quickstart: build a small circuit with the public API, simulate it on a
// single node, and inspect amplitudes, probabilities and entropy.
package main

import (
	"fmt"
	"math/rand"

	"qusim"
)

func main() {
	// A 3-qubit GHZ state: H on qubit 0, then a CNOT chain.
	c := qusim.NewCircuit(3)
	c.Append(qusim.H(0))
	c.Append(qusim.CNOT(0, 1)) // control 0, target 1
	c.Append(qusim.CNOT(1, 2))

	st := qusim.NewState(3)
	qusim.Simulate(c, st)

	fmt.Println("GHZ state (|000⟩ + |111⟩)/√2:")
	for b := 0; b < st.Len(); b++ {
		if p := st.Probability(b); p > 1e-12 {
			fmt.Printf("  |%03b⟩: amplitude %.4f, probability %.4f\n", b, st.Amplitude(b), p)
		}
	}
	fmt.Printf("norm: %.12f\n\n", st.Norm())

	// A deeper random circuit: measure the output distribution's entropy
	// and draw samples.
	sup := qusim.Supremacy(qusim.SupremacyOptions{Rows: 4, Cols: 3, Depth: 16, Seed: 7})
	st2 := qusim.NewState(sup.N)
	qusim.Simulate(sup, st2)
	fmt.Printf("12-qubit supremacy circuit: %d gates, output entropy %.4f nats\n",
		len(sup.Gates), st2.Entropy())

	rng := rand.New(rand.NewSource(1))
	fmt.Println("five samples from the output distribution:")
	for _, s := range st2.Sample(rng, 5) {
		fmt.Printf("  |%012b⟩ (p = %.2e)\n", s, st2.Probability(s))
	}
}
