// Out-of-core: the Sec. 5 outlook — because scheduling reduces the whole
// circuit to two all-to-alls, the state vector can live on disk (SSDs at
// 49 qubits / 8 PB in the paper). Here an 18-qubit state is simulated
// entirely from a backing file using 64-KiB in-memory chunks, and verified
// against the in-memory simulator.
package main

import (
	"fmt"
	"log"
	"math"

	"qusim"
	"qusim/internal/oocvec"
)

func main() {
	const (
		n = 18
		l = 12 // 2^12 amplitudes (64 KiB) in memory at a time
	)
	rows, cols := qusim.GridForQubits(n)
	c := qusim.Supremacy(qusim.SupremacyOptions{
		Rows: rows, Cols: cols, Depth: 25, Seed: 9, SkipInitialH: true,
	})
	opts := qusim.DefaultScheduleOptions(l)
	plan, err := qusim.Schedule(c, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d qubits, %d gates; state on disk: %.1f MB, in memory: %.1f KB\n",
		n, len(c.Gates), math.Pow(2, n)*16/1e6, math.Pow(2, l)*16/1e3)
	fmt.Printf("schedule: %d swaps (file transposes), %d clusters, %d diagonal ops\n",
		plan.Stats.Swaps, plan.Stats.Clusters, plan.Stats.DiagonalOps)

	v, err := oocvec.NewUniform(n, l, "")
	if err != nil {
		log.Fatal(err)
	}
	defer v.Close()
	// Arm the circuit-aware prefetch pipeline: each stage's gates fuse into
	// one streamed pass, with 4 chunks read ahead of compute (DESIGN.md §11).
	v.SetPrefetch(4)
	if err := v.Run(plan); err != nil {
		log.Fatal(err)
	}
	norm, err := v.Norm()
	if err != nil {
		log.Fatal(err)
	}
	ent, err := v.Entropy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core result: norm %.12f, entropy %.6f nats\n", norm, ent)

	// Verify against the in-memory simulator.
	st := qusim.NewUniformState(n)
	qusim.Simulate(c, st)
	fmt.Printf("in-memory result:   norm %.12f, entropy %.6f nats\n", st.Norm(), st.Entropy())
	if math.Abs(ent-st.Entropy()) > 1e-9 {
		log.Fatal("MISMATCH between out-of-core and in-memory simulation")
	}
	fmt.Println("match ✓ — the state never needed to fit in memory")
}
