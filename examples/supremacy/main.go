// Supremacy: the paper's headline workload scaled to a laptop — generate a
// depth-25 random quantum supremacy circuit (Fig. 1 rules), schedule it with
// the communication-minimizing optimizations of Sec. 3.6, and run it across
// simulated MPI ranks, comparing against the per-gate scheme of [5].
package main

import (
	"fmt"
	"log"

	"qusim"
)

func main() {
	const (
		qubits = 20
		depth  = 25
		ranks  = 8 // 2^3 simulated nodes
	)
	rows, cols := qusim.GridForQubits(qubits)
	c := qusim.Supremacy(qusim.SupremacyOptions{
		Rows: rows, Cols: cols, Depth: depth, Seed: 42,
		SkipInitialH: true, // we initialize the uniform state directly
		OmitFinalCZs: true, // final CZs do not change probabilities
	})
	fmt.Printf("circuit: %dx%d grid, depth %d, %d gates\n", rows, cols, depth, len(c.Gates))

	// Schedule: stages + global-to-local swaps + fused clusters.
	opts := qusim.DefaultScheduleOptions(qubits - 3) // 3 global qubits
	plan, err := qusim.Schedule(c, opts)
	if err != nil {
		log.Fatal(err)
	}
	s := plan.Stats
	fmt.Printf("schedule: %d stages, %d swaps, %d clusters (%.1f gates each), %d diagonal specializations\n",
		s.Stages, s.Swaps, s.Clusters, s.GatesPerCluster, s.DiagonalOps)
	fmt.Printf("per-gate scheme would need %d communication steps (%.0fx more)\n\n",
		s.BaselineGlobalGates, float64(s.BaselineGlobalGates)/float64(s.Swaps))

	res, err := qusim.RunDistributed(plan, qusim.DistOptions{Ranks: ranks, Init: qusim.InitUniform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled run:  %7.3fs wall, %2d comm steps, %6.1f MB moved, entropy %.5f\n",
		res.Elapsed.Seconds(), res.CommSteps, float64(res.CommBytes)/1e6, res.Entropy)

	base, err := qusim.RunBaseline(c, qusim.BaselineOptions{
		Ranks: ranks, Init: qusim.InitUniform, Specialize2Q: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-gate run:   %7.3fs wall, %2d comm steps, %6.1f MB moved, entropy %.5f\n",
		base.Elapsed.Seconds(), base.CommSteps, float64(base.CommBytes)/1e6, base.Entropy)
	fmt.Printf("\ncommunication reduction: %.1fx steps, %.1fx bytes\n",
		float64(base.CommSteps)/float64(res.CommSteps),
		float64(base.CommBytes)/float64(res.CommBytes))
}
