// Phase estimation: estimate the eigenphase of a phase gate with the
// textbook QPE circuit, comparing the statistical error across counting-
// register sizes — a standard verification workload for the simulator
// (Sec. 1's "verifying quantum algorithms").
package main

import (
	"fmt"
	"math"

	"qusim"
	"qusim/internal/circuit"
)

func main() {
	phi := 0.15625 // = 5/32: exactly representable with ≥5 counting qubits
	fmt.Printf("estimating eigenphase φ = %v of diag(1, e^{2πiφ})\n\n", phi)
	fmt.Printf("%-16s %-14s %-14s %-12s\n", "counting qubits", "estimate", "peak prob", "|error|")
	for t := 3; t <= 8; t++ {
		c := circuit.PhaseEstimation(t, phi)
		st := qusim.NewState(c.N)
		qusim.Simulate(c, st)
		best, bestP := 0, 0.0
		for b := 0; b < 1<<t; b++ {
			p := st.Probability(b | 1<<t)
			if p > bestP {
				best, bestP = b, p
			}
		}
		est := float64(best) / math.Pow(2, float64(t))
		fmt.Printf("%-16d %-14.6f %-14.4f %-12.2e\n", t, est, bestP, math.Abs(est-phi))
	}
	fmt.Println("\nonce 2^t resolves φ exactly (t ≥ 5), the peak probability reaches 1")
	fmt.Println("and the error vanishes — the textbook QPE convergence.")
}
