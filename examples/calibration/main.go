// Calibration: the paper's motivating use case (Sec. 1) — using the
// simulator's ideal output probabilities to benchmark a noisy quantum
// device via cross-entropy benchmarking (Boixo et al.). A simulated
// "device" samples from a depolarized version of the true distribution;
// the XEB estimators recover its fidelity.
package main

import (
	"fmt"
	"math/rand"

	"qusim"
	"qusim/internal/xeb"
)

func main() {
	const n = 16
	rows, cols := qusim.GridForQubits(n)
	c := qusim.Supremacy(qusim.SupremacyOptions{Rows: rows, Cols: cols, Depth: 25, Seed: 3})

	// Ideal simulation: the reference distribution a perfect device would
	// sample from.
	st := qusim.NewState(n)
	qusim.Simulate(c, st)
	probs := st.Probabilities()

	fmt.Printf("%d-qubit depth-25 supremacy circuit (%d gates)\n", n, len(c.Gates))
	fmt.Printf("output entropy:        %.4f nats\n", st.Entropy())
	fmt.Printf("Porter-Thomas value:   %.4f nats\n", xeb.PorterThomasEntropy(n))
	fmt.Printf("KS distance to e^-x:   %.4f (chaotic regime when << 1)\n\n", xeb.PorterThomasKS(probs))

	// A family of "devices" with decreasing fidelity: each samples from
	// α·p_ideal + (1−α)·uniform.
	rng := rand.New(rand.NewSource(7))
	shots := 50000
	fmt.Printf("%-16s %-18s %-12s\n", "true fidelity", "cross-entropy est.", "linear XEB")
	for _, alpha := range []float64{1.0, 0.8, 0.5, 0.2, 0.0} {
		noisy := xeb.DepolarizedProbs(probs, alpha)
		samples := sample(noisy, shots, rng)
		ce, err := xeb.CrossEntropy(probs, samples)
		if err != nil {
			panic(err)
		}
		lin, err := xeb.LinearXEB(n, probs, samples)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16.2f %-18.3f %-12.3f\n", alpha, xeb.FidelityFromCrossEntropy(n, ce), lin)
	}
	fmt.Println("\nboth estimators recover the device fidelity from samples alone —")
	fmt.Println("this is what the 45-qubit simulation enables for real 40+ qubit devices.")
}

func sample(probs []float64, shots int, rng *rand.Rand) []int {
	cdf := make([]float64, len(probs)+1)
	for i, p := range probs {
		cdf[i+1] = cdf[i] + p
	}
	out := make([]int, shots)
	for s := range out {
		r := rng.Float64() * cdf[len(cdf)-1]
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[s] = lo
	}
	return out
}
