// Schedule analysis: the scheduler works on circuits far beyond what any
// machine can simulate — here the 45- and 49-qubit supremacy circuits of
// the paper — because it never allocates state. This reproduces the
// paper's communication analysis (Fig. 5b and the Sec. 5 outlook: a
// 49-qubit circuit needs just two global-to-local swaps, few enough that
// the state could live on solid-state drives).
package main

import (
	"fmt"
	"log"

	"qusim"
)

func main() {
	fmt.Println("communication schedule for depth-25 supremacy circuits, 30 local qubits")
	fmt.Println("(median-hard mode: diagonal single-qubit gates specialized)")
	fmt.Println()
	fmt.Printf("%-7s %-7s %-7s %-9s %-10s %-22s\n",
		"qubits", "nodes", "swaps", "clusters", "diag ops", "per-gate scheme steps")
	for _, n := range []int{30, 36, 42, 45, 49} {
		rows, cols := qusim.GridForQubits(n)
		c := qusim.Supremacy(qusim.SupremacyOptions{
			Rows: rows, Cols: cols, Depth: 25, Seed: 0, SkipInitialH: true,
		})
		opts := qusim.DefaultScheduleOptions(30)
		opts.SpecializeDiagonal1Q = true
		plan, err := qusim.Schedule(c, opts)
		if err != nil {
			log.Fatal(err)
		}
		s := plan.Stats
		nodes := 1 << (n - plan.L)
		fmt.Printf("%-7d %-7d %-7d %-9d %-10d %d\n",
			n, nodes, s.Swaps, s.Clusters, s.DiagonalOps, s.BaselineGlobalGates)
	}
	fmt.Println()
	fmt.Println("paper: 36 qubits -> 1 swap, 42/45 -> 2 swaps; 49 qubits would need")
	fmt.Println("only two all-to-alls, so SSDs could hold the 8 PB state (Sec. 5).")
}
